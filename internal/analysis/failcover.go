package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"smarticeberg/internal/analysis/cfg"
)

// FailCover flags raw IO calls — os file creation/removal, *os.File and
// bufio reads/writes, io copy helpers — that can execute without a
// failpoint.Inject site having run first in the same function. The fault
// matrices (PR 3/5) prove recovery only for failures they can inject; an IO
// call with no reachable failpoint upstream is a failure mode the test suite
// can never exercise.
//
// Scope: packages that import smarticeberg/internal/failpoint (the subsystem
// has opted into fault coverage) except the failpoint package itself. A
// must-solve over the function's CFG tracks "an Inject has run"; any IO call
// not dominated by one is reported, with the nearest existing site name in
// the same file so the gap is actionable. Calls into internal/spill helpers
// are not IO here — their failpoints live in the callee. File Close/Stat are
// exempt: close errors at worst leak a descriptor already covered by
// Manager cleanup, and injecting them adds no recovery path worth testing.
var FailCover = &Analyzer{
	Name: "failcover",
	Doc:  "flag raw IO in failpoint-instrumented packages not preceded by a failpoint.Inject site",
	Run:  runFailCover,
}

func runFailCover(pass *Pass) error {
	path := pass.Pkg.Path()
	if path == failpointPkgSuffix || strings.HasSuffix(path, "/"+failpointPkgSuffix) {
		return nil
	}
	imports := false
	for _, p := range pass.Pkg.Imports() {
		ip := p.Path()
		if ip == failpointPkgSuffix || strings.HasSuffix(ip, "/"+failpointPkgSuffix) {
			imports = true
			break
		}
	}
	if !imports {
		return nil
	}
	sites := collectInjectSites(pass)
	eachBody(pass.Files, func(body *ast.BlockStmt) {
		checkFailBody(pass, body, sites)
	})
	return nil
}

// isInjectCall reports whether call is failpoint.Inject(...) or
// failpoint.InjectInto(...) — both arm the same per-site hook, so both count
// as fault coverage.
func isInjectCall(pass *Pass, call *ast.CallExpr) bool {
	switch pkgFuncName(pass, call, failpointPkgSuffix) {
	case "Inject", "InjectInto":
		return true
	}
	return false
}

var osIOFuncs = map[string]bool{
	"Open": true, "OpenFile": true, "Create": true, "CreateTemp": true,
	"MkdirTemp": true, "Mkdir": true, "MkdirAll": true,
	"Remove": true, "RemoveAll": true, "Rename": true, "Truncate": true,
	"ReadFile": true, "WriteFile": true,
}

var fileIOMethods = map[string]bool{
	"Read": true, "ReadAt": true, "Write": true, "WriteAt": true,
	"WriteString": true, "Seek": true, "Sync": true, "Truncate": true,
}

var bufioWriterMethods = map[string]bool{
	"Write": true, "WriteByte": true, "WriteString": true, "WriteRune": true,
	"Flush": true,
}

var bufioReaderMethods = map[string]bool{
	"Read": true, "ReadByte": true, "ReadBytes": true, "ReadString": true,
	"ReadRune": true, "Peek": true, "Discard": true,
}

var ioIOFuncs = map[string]bool{
	"ReadFull": true, "ReadAll": true, "Copy": true, "CopyN": true,
	"CopyBuffer": true, "WriteString": true,
}

// ioCallName classifies call as a raw IO operation and returns a printable
// name for the diagnostic, e.g. "os.OpenFile" or "(*os.File).WriteAt".
func ioCallName(pass *Pass, call *ast.CallExpr) (string, bool) {
	if name := pkgFuncName(pass, call, "os"); name != "" && osIOFuncs[name] {
		return "os." + name, true
	}
	if name := pkgFuncName(pass, call, "io"); name != "" && ioIOFuncs[name] {
		return "io." + name, true
	}
	name := selName(call)
	if name == "" {
		return "", false
	}
	t := receiverType(pass, call)
	if t == nil {
		return "", false
	}
	switch {
	case fileIOMethods[name] && isPtrToPkgType(t, "os", "File"):
		return "(*os.File)." + name, true
	case bufioWriterMethods[name] && isPtrToPkgType(t, "bufio", "Writer"):
		return "(*bufio.Writer)." + name, true
	case bufioReaderMethods[name] && isPtrToPkgType(t, "bufio", "Reader"):
		return "(*bufio.Reader)." + name, true
	}
	return "", false
}

// injectSite is one failpoint.Inject call whose site argument renders to a
// name, used for "nearest site" hints.
type injectSite struct {
	line int
	name string
}

func collectInjectSites(pass *Pass) map[string][]injectSite {
	byFile := map[string][]injectSite{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			// Inject takes the site name alone; InjectInto adds the error
			// pointer — the site name is the first argument of both.
			if !ok || !isInjectCall(pass, call) || len(call.Args) < 1 {
				return true
			}
			pos := pass.Fset.Position(call.Pos())
			byFile[pos.Filename] = append(byFile[pos.Filename], injectSite{
				line: pos.Line,
				name: exprString(call.Args[0]),
			})
			return true
		})
	}
	for _, s := range byFile {
		sort.Slice(s, func(i, j int) bool { return s[i].line < s[j].line })
	}
	return byFile
}

func nearestSite(sites map[string][]injectSite, pos token.Position) string {
	best := ""
	bestDist := 1 << 30
	for _, s := range sites[pos.Filename] {
		d := s.line - pos.Line
		if d < 0 {
			d = -d
		}
		if d < bestDist {
			bestDist, best = d, fmt.Sprintf("%s (line %d)", s.name, s.line)
		}
	}
	if best == "" {
		return "no Inject sites in this file yet — add one from the failpoint site catalog"
	}
	return "nearest existing site: " + best
}

func checkFailBody(pass *Pass, body *ast.BlockStmt, sites map[string][]injectSite) {
	g := cfg.New(body)
	flow := &cfg.Flow{
		Meet: cfg.Must,
		Node: func(n ast.Node, in cfg.Facts) cfg.Facts {
			out := in
			walkShallow(n, func(x ast.Node) bool {
				if call, ok := x.(*ast.CallExpr); ok && isInjectCall(pass, call) {
					out = out.With(0)
				}
				return true
			})
			return out
		},
	}
	r := flow.Solve(g)
	for _, b := range g.Blocks {
		if !r.Reachable(b) {
			continue
		}
		for i, n := range b.Nodes {
			guarded := r.Before(b, i).Has(0)
			walkShallow(n, func(x ast.Node) bool {
				call, ok := x.(*ast.CallExpr)
				if !ok {
					return true
				}
				if isInjectCall(pass, call) {
					guarded = true
					return true
				}
				if name, isIO := ioCallName(pass, call); isIO && !guarded {
					pos := pass.Fset.Position(call.Pos())
					pass.Reportf(call.Pos(),
						"%s is not guarded by a failpoint.Inject site on this path — the fault matrix cannot exercise this failure (%s)",
						name, nearestSite(sites, pos))
				}
				return true
			})
		}
	}
}
