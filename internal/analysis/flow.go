package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Shared plumbing for the flow-sensitive passes (budgetbalance, cancelcheck,
// failcover). These passes build a cfg.Graph per function body and solve
// forward dataflow problems over it; the helpers here identify the contract
// types and calls the transfer functions care about.

const (
	resourcePkgSuffix  = "internal/resource"
	failpointPkgSuffix = "internal/failpoint"
)

// eachBody calls fn once for every function body in the package: each
// declared function, then every function literal (at any depth — the CFG
// builder treats nested literals as opaque, so each body is analyzed exactly
// once, in isolation).
func eachBody(files []*ast.File, fn func(body *ast.BlockStmt)) {
	for _, f := range files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd.Body)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				fn(fl.Body)
			}
			return true
		})
	}
}

// isPtrToPkgType reports whether t is a pointer to the named type
// pkgSuffix.name (path matched by suffix, like isPkgType).
func isPtrToPkgType(t types.Type, pkgSuffix, name string) bool {
	p, ok := types.Unalias(t).(*types.Pointer)
	if !ok {
		return false
	}
	return isPkgType(p.Elem(), pkgSuffix, name)
}

// isBudgetRef reports whether t can carry resource.Budget's methods (they
// have pointer receivers, but an addressable value works too).
func isBudgetRef(t types.Type) bool {
	return isPtrToPkgType(t, resourcePkgSuffix, "Budget") || isPkgType(t, resourcePkgSuffix, "Budget")
}

// isExecContextPtr reports whether t is *engine.ExecContext.
func isExecContextPtr(t types.Type) bool {
	return isPtrToPkgType(t, enginePkgSuffix, "ExecContext")
}

// isContextContext reports whether t is context.Context.
func isContextContext(t types.Type) bool {
	n := namedFrom(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// batchOperatorInterface locates the engine.BatchOperator interface visible
// from pkg, mirroring operatorInterface.
func batchOperatorInterface(pkg *types.Package) *types.Interface {
	candidates := append([]*types.Package{pkg}, pkg.Imports()...)
	for _, p := range candidates {
		if p.Path() != enginePkgSuffix && !strings.HasSuffix(p.Path(), "/"+enginePkgSuffix) {
			continue
		}
		obj := p.Scope().Lookup("BatchOperator")
		if obj == nil {
			continue
		}
		if iface, ok := obj.Type().Underlying().(*types.Interface); ok {
			return iface
		}
	}
	return nil
}

// receiverType returns the type of a selector call's receiver expression, or
// nil when it cannot be resolved.
func receiverType(pass *Pass, call *ast.CallExpr) types.Type {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok {
		return nil
	}
	return tv.Type
}

// selName returns the method/selector name of a call, or "".
func selName(call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	return ""
}

// pkgFuncName returns the function name when call is a direct selector on the
// package with import path pkgPath ("os", "io", ...), and "" otherwise.
func pkgFuncName(pass *Pass, call *ast.CallExpr, pkgPath string) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	path := pn.Imported().Path()
	if path != pkgPath && !strings.HasSuffix(path, "/"+pkgPath) {
		return ""
	}
	return sel.Sel.Name
}

// walkShallow visits n's subtree in source order but never descends into
// function literals: their bodies are separate dataflow worlds.
func walkShallow(n ast.Node, visit func(ast.Node) bool) {
	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		return visit(x)
	})
}
