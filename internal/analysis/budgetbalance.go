package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"smarticeberg/internal/analysis/cfg"
)

// BudgetBalance flags resource.Budget.Reserve and engine.ExecContext.Charge
// calls whose reservation can still be outstanding on some path to a function
// exit — an early return, an explicit panic, or the natural end — that no
// deferred Release covers. The runtime contract (PR 3) is that Budget.Used()
// returns to zero after any outcome; a reservation leaked on one path
// silently shrinks the budget for the rest of the query.
//
// The analysis is intraprocedural, per function body, and deliberately scoped
// to functions that balance locally:
//
//   - Functions with no typed Release call at all (directly, or registered by
//     a defer) are skipped: operators routinely Charge in Open and Release in
//     Close, and cross-function pairing is out of scope. The aggSpiller
//     charge/release wrappers in engine/agg_spill.go are likewise invisible
//     to the pass for this reason (tracked limitation: untyped wrappers).
//   - A reservation is considered handed off — and the fact killed — when its
//     amount expression is a simple identifier referenced again outside the
//     reserving call: `c.bytes.Add(n)` after `Charge(site, n)` transfers
//     ownership to whoever reads that counter.
//   - A reservation made directly in a return statement (`return ec.Charge(…)`)
//     belongs to the caller and is not tracked.
//   - Budget.Acquire is tracked like Reserve, balanced by the handle's
//     Reservation.Release. A reservation handle that is used anywhere other
//     than its own Release — stored in a struct, returned, passed to another
//     function — is a hand-off, and the fact is killed: whoever holds the
//     handle now owns the Release. This is what lets icebergd's admission
//     queue prove every reject path releases its queued slot while the
//     admitted path hands the grant to the request's teardown.
//   - Edges are failure-aware: on the branch where `Reserve(...) != nil` (or
//     an error variable assigned from the call tests non-nil), nothing was
//     charged, so the fact is killed. An error variable reassigned from an
//     unrelated call afterwards still kills the fact on its != nil branch;
//     that can only under-report.
var BudgetBalance = &Analyzer{
	Name: "budgetbalance",
	Doc:  "flag Budget.Reserve/ExecContext.Charge not balanced by a Release on every exit path",
	Run:  runBudgetBalance,
}

func runBudgetBalance(pass *Pass) error {
	eachBody(pass.Files, func(body *ast.BlockStmt) {
		checkBudgetBody(pass, body)
	})
	return nil
}

// reserveSite is one tracked Reserve/Charge call in a function body.
type reserveSite struct {
	call   *ast.CallExpr
	what   string       // "Budget.Reserve" or "ExecContext.Charge"
	amount types.Object // the amount argument, when it is a plain identifier
}

// reserveKind classifies call as a tracked reservation.
func reserveKind(pass *Pass, call *ast.CallExpr) (string, bool) {
	t := receiverType(pass, call)
	if t == nil {
		return "", false
	}
	switch selName(call) {
	case "Reserve":
		if isBudgetRef(t) {
			return "Budget.Reserve", true
		}
	case "Acquire":
		if isBudgetRef(t) {
			return "Budget.Acquire", true
		}
	case "Charge":
		if isExecContextPtr(t) {
			return "ExecContext.Charge", true
		}
	}
	return "", false
}

// isReservationPtr reports whether t is *resource.Reservation.
func isReservationPtr(t types.Type) bool {
	return isPtrToPkgType(t, resourcePkgSuffix, "Reservation")
}

// isReleaseCall reports whether call is a typed Release on a Budget,
// ExecContext, or Reservation receiver.
func isReleaseCall(pass *Pass, call *ast.CallExpr) bool {
	if selName(call) != "Release" {
		return false
	}
	t := receiverType(pass, call)
	return t != nil && (isBudgetRef(t) || isExecContextPtr(t) || isReservationPtr(t))
}

// deferRegistersRelease reports whether d registers a Release to run at
// function exit: either `defer x.Release(n)` directly or a deferred function
// literal whose body contains a typed Release.
func deferRegistersRelease(pass *Pass, d *ast.DeferStmt) bool {
	if isReleaseCall(pass, d.Call) {
		return true
	}
	fl, ok := d.Call.Fun.(*ast.FuncLit)
	if !ok {
		return false
	}
	found := false
	walkShallow(fl.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isReleaseCall(pass, call) {
			found = true
		}
		return !found
	})
	return found
}

func checkBudgetBody(pass *Pass, body *ast.BlockStmt) {
	// Collect tracked reservation sites, the error variables they assign,
	// and whether the function releases anything at all. Sites inside return
	// statements or defers are not tracked (caller-owned / exit-time).
	var sites []*reserveSite
	siteIdx := map[*ast.CallExpr]int{}
	anyRelease := false
	skip := map[*ast.CallExpr]bool{} // calls under return statements
	walkShallow(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if deferRegistersRelease(pass, n) {
				anyRelease = true
			}
			return false
		case *ast.ReturnStmt:
			walkShallow(n, func(x ast.Node) bool {
				if call, ok := x.(*ast.CallExpr); ok {
					skip[call] = true
				}
				return true
			})
			return false
		case *ast.CallExpr:
			if isReleaseCall(pass, n) {
				anyRelease = true
				return true
			}
			what, ok := reserveKind(pass, n)
			if !ok || len(sites) >= cfg.MaxFacts-1 {
				return true
			}
			s := &reserveSite{call: n, what: what}
			if len(n.Args) == 2 {
				if id, ok := n.Args[1].(*ast.Ident); ok {
					s.amount = pass.TypesInfo.ObjectOf(id)
				}
			}
			siteIdx[n] = len(sites)
			sites = append(sites, s)
		}
		return true
	})
	if len(sites) == 0 || !anyRelease {
		return
	}

	// Error variables assigned directly from a site call: `err := b.Reserve(…)`
	// (including if-statement inits, which appear as ordinary assign nodes).
	// Two-result sites (`res, err := b.Acquire(…)`) also bind the reservation
	// handle: any later use of that handle outside its own Release is a
	// hand-off (stored, returned, passed along) and kills the fact.
	errVar := map[types.Object]int{}
	resVar := map[types.Object]int{}
	walkShallow(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		i, tracked := siteIdx[call]
		if !tracked {
			return true
		}
		bind := func(e ast.Expr, into map[types.Object]int) {
			if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
				if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
					into[obj] = i
				}
			}
		}
		switch len(as.Lhs) {
		case 1:
			bind(as.Lhs[0], errVar)
		case 2:
			bind(as.Lhs[0], resVar)
			bind(as.Lhs[1], errVar)
		}
		return true
	})

	g := cfg.New(body)

	// May-solve: which reservations can still be outstanding where.
	may := &cfg.Flow{
		Meet: cfg.May,
		Node: func(n ast.Node, in cfg.Facts) cfg.Facts {
			out := in
			ast.Inspect(n, func(x ast.Node) bool {
				switch x := x.(type) {
				case *ast.FuncLit, *ast.DeferStmt:
					// Separate world / runs at exit, not here.
					return false
				case *ast.CallExpr:
					if i, ok := siteIdx[x]; ok {
						if !skip[x] {
							out = out.With(i)
						}
						return false // the site's own amount arg is not an escape
					}
					if isReleaseCall(pass, x) {
						out = 0
						return false
					}
				case *ast.Ident:
					if obj := pass.TypesInfo.ObjectOf(x); obj != nil {
						for i, s := range sites {
							if s.amount != nil && s.amount == obj {
								out = out.Without(i)
							}
						}
						// A reservation handle used anywhere but its own
						// Release is handed off. The defining assignment
						// cannot self-kill: Inspect visits the Lhs idents
						// before the generating call on the Rhs.
						if i, ok := resVar[obj]; ok {
							out = out.Without(i)
						}
					}
				}
				return true
			})
			return out
		},
		Edge: func(from, to *cfg.Block, out cfg.Facts) cfg.Facts {
			if from.Cond == nil {
				return out
			}
			for _, i := range failedSites(pass, from.Cond, to == from.TrueSucc, siteIdx, errVar) {
				out = out.Without(i)
			}
			return out
		},
	}

	// Must-solve: is a deferred Release certainly registered by this point.
	deferred := &cfg.Flow{
		Meet: cfg.Must,
		Node: func(n ast.Node, in cfg.Facts) cfg.Facts {
			if d, ok := n.(*ast.DeferStmt); ok && deferRegistersRelease(pass, d) {
				return in.With(0)
			}
			return in
		},
	}

	mayR := may.Solve(g)
	defR := deferred.Solve(g)
	leaks := make([][]string, len(sites))
	for _, p := range g.Exit.Preds {
		if !mayR.Reachable(p) {
			continue
		}
		if defR.Out(p).Has(0) {
			continue // a deferred Release covers this exit
		}
		out := mayR.Out(p)
		for i := range sites {
			if out.Has(i) {
				leaks[i] = append(leaks[i], exitDesc(pass, p))
			}
		}
	}
	for i, s := range sites {
		if len(leaks[i]) == 0 {
			continue
		}
		where := leaks[i]
		if len(where) > 3 {
			where = append(where[:3:3], fmt.Sprintf("%d more", len(leaks[i])-3))
		}
		label := ""
		if len(s.call.Args) > 0 {
			label = exprString(s.call.Args[0])
		}
		pass.Reportf(s.call.Pos(),
			"%s(%s) is not balanced by a Release on every path: leaks at %s — release on that path or defer the Release",
			s.what, label, strings.Join(where, ", "))
	}
}

// failedSites returns the tracked sites known to have failed — and therefore
// charged nothing — on the given edge of cond.
func failedSites(pass *Pass, cond ast.Expr, taken bool, siteIdx map[*ast.CallExpr]int, errVar map[types.Object]int) []int {
	switch e := ast.Unparen(cond).(type) {
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			return failedSites(pass, e.X, !taken, siteIdx, errVar)
		}
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND:
			if taken { // both conjuncts are true on this edge
				return append(failedSites(pass, e.X, true, siteIdx, errVar),
					failedSites(pass, e.Y, true, siteIdx, errVar)...)
			}
		case token.LOR:
			if !taken { // both disjuncts are false on this edge
				return append(failedSites(pass, e.X, false, siteIdx, errVar),
					failedSites(pass, e.Y, false, siteIdx, errVar)...)
			}
		case token.NEQ, token.EQL:
			other := ast.Expr(nil)
			if isNilIdent(e.Y) {
				other = e.X
			} else if isNilIdent(e.X) {
				other = e.Y
			}
			if other == nil {
				return nil
			}
			// `err != nil` is the failure on the true edge; `err == nil` on
			// the false edge.
			failEdge := taken
			if e.Op == token.EQL {
				failEdge = !taken
			}
			if failEdge {
				return sitesIn(pass, other, siteIdx, errVar)
			}
		}
	}
	return nil
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// sitesIn returns the tracked sites whose result e observes: the site call
// itself, or an error variable assigned from one.
func sitesIn(pass *Pass, e ast.Expr, siteIdx map[*ast.CallExpr]int, errVar map[types.Object]int) []int {
	var out []int
	walkShallow(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if i, ok := siteIdx[n]; ok {
				out = append(out, i)
			}
		case *ast.Ident:
			if obj := pass.TypesInfo.ObjectOf(n); obj != nil {
				if i, ok := errVar[obj]; ok {
					out = append(out, i)
				}
			}
		}
		return true
	})
	return out
}

// exitDesc names the kind of exit a predecessor of the Exit block represents.
func exitDesc(pass *Pass, p *cfg.Block) string {
	if len(p.Nodes) == 0 {
		return "the end of the function"
	}
	last := p.Nodes[len(p.Nodes)-1]
	line := pass.Fset.Position(last.Pos()).Line
	if cfg.IsPanic(last) {
		return fmt.Sprintf("the panic on line %d", line)
	}
	if _, ok := last.(*ast.ReturnStmt); ok {
		return fmt.Sprintf("the return on line %d", line)
	}
	return fmt.Sprintf("the function end after line %d", line)
}
