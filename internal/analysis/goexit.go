package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// GoExit flags goroutines launched inside the execution packages
// (internal/engine, internal/iceberg) whose body does not start with a
// deferred recover. A panic in a bare goroutine crashes the whole process —
// no operator, optimizer fallback, or caller can catch it — so every worker
// must begin with `defer func() { recover() ... }()` or an equivalent
// containment helper such as `defer CapturePanic(site, &err)` that converts
// the panic into a typed *engine.PanicError.
var GoExit = &Analyzer{
	Name: "goexit",
	Doc:  "flag goroutines in the execution packages without a deferred recover",
	Run:  runGoExit,
}

// goexitPkgSuffixes limits the pass to the packages whose goroutines run user
// queries. Test fixtures are type-checked as "fixtures/goexit".
var goexitPkgSuffixes = []string{"internal/engine", "internal/iceberg", "goexit"}

// containmentCallRe accepts deferred helper calls whose name advertises panic
// handling (CapturePanic, engine.CapturePanic, recoverWorker, ...).
var containmentCallRe = regexp.MustCompile(`(?i)(recover|panic)`)

func runGoExit(pass *Pass) error {
	path := pass.Pkg.Path()
	inScope := false
	for _, suf := range goexitPkgSuffixes {
		if strings.HasSuffix(path, suf) {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}

	// Index the package's own function declarations so `go helper(...)` can
	// be checked through the named function's body.
	decls := map[types.Object]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Name != nil {
				if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
					decls[obj] = fd
				}
			}
		}
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body := goroutineBody(pass, gs.Call.Fun, decls)
			if body == nil {
				// The callee's body is out of reach (imported function,
				// method value, function-typed variable); assume it contains
				// its own panics rather than guessing.
				return true
			}
			if !hasRecoverDefer(body) {
				pass.Reportf(gs.Pos(),
					"goroutine has no deferred recover; a panic here crashes the process — start the body with a defer that recovers (e.g. engine.CapturePanic) and reports a typed error")
			}
			return true
		})
	}
	return nil
}

// goroutineBody resolves the function body a go statement will run: a
// function literal directly, or the declaration of a package-level function
// named by the call. Returns nil when the body is not visible in this
// package.
func goroutineBody(pass *Pass, fun ast.Expr, decls map[types.Object]*ast.FuncDecl) *ast.BlockStmt {
	switch fn := ast.Unparen(fun).(type) {
	case *ast.FuncLit:
		return fn.Body
	case *ast.Ident:
		if obj := pass.TypesInfo.Uses[fn]; obj != nil {
			if fd := decls[obj]; fd != nil {
				return fd.Body
			}
		}
	case *ast.SelectorExpr:
		if obj := pass.TypesInfo.Uses[fn.Sel]; obj != nil {
			if fd := decls[obj]; fd != nil {
				return fd.Body
			}
		}
	}
	return nil
}

// hasRecoverDefer reports whether any top-level statement of body is a defer
// that contains a recover() call or invokes a containment helper by name.
func hasRecoverDefer(body *ast.BlockStmt) bool {
	for _, stmt := range body.List {
		ds, ok := stmt.(*ast.DeferStmt)
		if !ok {
			continue
		}
		switch fn := ast.Unparen(ds.Call.Fun).(type) {
		case *ast.FuncLit:
			if callsRecover(fn.Body) {
				return true
			}
		default:
			if containmentCallRe.MatchString(finalIdent(ds.Call.Fun)) {
				return true
			}
		}
	}
	return false
}

// callsRecover reports whether the block contains a call to the builtin
// recover, including inside nested literals.
func callsRecover(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "recover" {
				found = true
				return false
			}
		}
		return !found
	})
	return found
}

// finalIdent extracts the rightmost identifier of a call target for the
// name-based containment check.
func finalIdent(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	}
	return ""
}
