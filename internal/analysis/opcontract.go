package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// OpContract enforces the Volcano iterator protocol documented on
// engine.Operator: every implementation defines Open/Next/Close itself (no
// silent inheritance through embedding, which is how a wrapper ends up with
// the wrong Schema or a pass-through Close), uses pointer receivers for the
// stateful protocol methods, and has at least one Next path that yields the
// nil-row exhaustion sentinel (directly or by delegating to a child's Next).
var OpContract = &Analyzer{
	Name: "opcontract",
	Doc:  "check engine.Operator implementations for the Open/Next/Close protocol and the nil-row exhaustion sentinel",
	Run:  runOpContract,
}

var protocolMethods = []string{"Open", "Next", "Close"}

func runOpContract(pass *Pass) error {
	iface := operatorInterface(pass.Pkg)
	if iface == nil {
		return nil // package cannot name engine.Operator; nothing to check
	}

	// Index method declarations by receiver type name across the package.
	decls := map[string]map[string]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) == 0 {
				continue
			}
			name := recvTypeName(fd.Recv.List[0].Type)
			if name == "" {
				continue
			}
			if decls[name] == nil {
				decls[name] = map[string]*ast.FuncDecl{}
			}
			decls[name][fd.Name.Name] = fd
		}
	}

	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if _, isIface := named.Underlying().(*types.Interface); isIface {
			continue
		}
		if !implementsOperator(named, iface) {
			continue
		}

		explicit := map[string]bool{}
		for i := 0; i < named.NumMethods(); i++ {
			explicit[named.Method(i).Name()] = true
		}
		var missing []string
		for _, m := range protocolMethods {
			if !explicit[m] {
				missing = append(missing, m)
			}
		}
		if len(missing) > 0 {
			pass.Reportf(tn.Pos(),
				"operator %s inherits %s from an embedded type; define the Open/Next/Close protocol explicitly",
				name, strings.Join(missing, ", "))
		}
		for _, m := range protocolMethods {
			fd := decls[name][m]
			if fd == nil {
				continue
			}
			if !isPointerRecv(fd) {
				pass.Reportf(fd.Pos(),
					"operator method %s.%s has a value receiver; operators are stateful iterators and need pointer receivers",
					name, m)
			}
			if m == "Next" && fd.Body != nil && !nextHasSentinel(fd.Body) {
				pass.Reportf(fd.Pos(),
					"%s.Next never returns the nil-row exhaustion sentinel; end of stream must yield (nil, nil) or delegate to a child's Next",
					name)
			}
		}
	}
	return nil
}

// recvTypeName unwraps a receiver type expression to its base identifier.
func recvTypeName(e ast.Expr) string {
	for {
		switch t := e.(type) {
		case *ast.StarExpr:
			e = t.X
		case *ast.IndexExpr: // generic receiver T[P]
			e = t.X
		case *ast.IndexListExpr:
			e = t.X
		case *ast.Ident:
			return t.Name
		default:
			return ""
		}
	}
}

func isPointerRecv(fd *ast.FuncDecl) bool {
	_, ok := fd.Recv.List[0].Type.(*ast.StarExpr)
	return ok
}

// nextHasSentinel reports whether the body contains a return that can signal
// exhaustion: a return whose first result is the nil row, a tail delegation
// `return <child>.Next()`, or a tail delegation to a batch row cursor
// (`return <cursor>.next(...)` — the engine's NextBatch-to-Next adapter,
// which itself yields the nil sentinel when the batch stream ends).
func nextHasSentinel(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) == 0 {
			return true
		}
		if id, ok := ret.Results[0].(*ast.Ident); ok && id.Name == "nil" {
			found = true
			return false
		}
		if len(ret.Results) == 1 {
			if call, ok := ret.Results[0].(*ast.CallExpr); ok {
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
					if sel.Sel.Name == "Next" || sel.Sel.Name == "next" {
						found = true
						return false
					}
				}
			}
		}
		return true
	})
	return found
}
