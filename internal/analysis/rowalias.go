package analysis

import (
	"go/ast"
	"go/types"
)

// RowAlias flags retained references to rows obtained from an Operator's
// Next, and to batches (or rows sliced out of batches) obtained from a
// BatchOperator's NextBatch. The engine contract
// (internal/engine/operator.go, internal/engine/batch.go) says a returned row
// is only valid until the next call to Next, and a returned batch — plus
// every row a Batch.Row call slices out of it — only until the next call to
// NextBatch: producers hand out internal buffers they overwrite on every
// call. Appending such a value to a slice, storing it into a map, field, or
// composite literal, or sending it over a channel without an explicit Clone()
// is a data-corruption bug that only manifests once the producer recycles the
// buffer.
//
// The same validity window applies to the columnar views a batch hands out:
// Batch.Col returns a *value.Col into the producer's column set and Batch.Sel
// returns the selection vector the producer rewrites on every chunk, so
// retaining either past the next NextBatch call reads torn state.
//
// The check is intraprocedural and name-based: a variable is tainted when it
// is assigned from a call to a method named Next whose first result is
// value.Row, from a call to a method named NextBatch whose first result is
// *value.Batch, or from a call to a batch method named Row (value.Row),
// Col (*value.Col), or Sel (value.Sel); it stays tainted for the rest of the
// function (the pass is not flow-sensitive). Cloned uses (r.Clone(),
// b.Clone(), b.CloneRows(...)) and element-wise copies (append(dst, r...))
// are allowed. Deliberate short-lived retention can be suppressed with
// //lint:ignore rowalias <reason>.
var RowAlias = &Analyzer{
	Name: "rowalias",
	Doc:  "flag rows returned by Next and batches (or Row/Col/Sel views) returned by NextBatch retained without Clone()",
	Run:  runRowAlias,
}

// rowaliasKind describes what a tainted variable holds, for reporting.
type rowaliasKind int

const (
	taintRow rowaliasKind = iota
	taintBatch
	taintBatchRow
	taintBatchCol
	taintBatchSel
)

func (k rowaliasKind) describe() (noun, origin, remedy string) {
	switch k {
	case taintBatch:
		return "batch", "NextBatch", "clone it first (batch.Clone())"
	case taintBatchRow:
		return "row", "Batch.Row", "clone it first (row.Clone())"
	case taintBatchCol:
		return "column view", "Batch.Col", "copy the values out (Col.Value) instead"
	case taintBatchSel:
		return "selection vector", "Batch.Sel", "copy the indices first (append(value.Sel(nil), s...))"
	default:
		return "row", "Next", "clone it first (row.Clone())"
	}
}

func runRowAlias(pass *Pass) error {
	for _, f := range pass.Files {
		tainted := map[types.Object]rowaliasKind{}
		// Pass 1: find variables bound to Next / NextBatch / Batch.Row
		// results.
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Rhs) != 1 {
				return true
			}
			call, ok := as.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			var kind rowaliasKind
			switch sel.Sel.Name {
			case "Next":
				if !firstResultIsRow(pass, call) {
					return true
				}
				kind = taintRow
			case "NextBatch":
				if !firstResultIsBatch(pass, call) {
					return true
				}
				kind = taintBatch
			case "Row":
				// Batch.Row slices a row out of the batch buffer; it inherits
				// the batch's validity window.
				if !firstResultIsRow(pass, call) || !recvIsBatch(pass, sel) {
					return true
				}
				kind = taintBatchRow
			case "Col":
				// Batch.Col exposes a column of the producer-owned column set;
				// it inherits the batch's validity window.
				if !firstResultIsCol(pass, call) || !recvIsBatch(pass, sel) {
					return true
				}
				kind = taintBatchCol
			case "Sel":
				// Batch.Sel exposes the selection vector the producer rewrites
				// every chunk; it inherits the batch's validity window.
				if !firstResultIsSel(pass, call) || !recvIsBatch(pass, sel) {
					return true
				}
				kind = taintBatchSel
			default:
				return true
			}
			id, ok := as.Lhs[0].(*ast.Ident)
			if !ok || id.Name == "_" {
				return true
			}
			if obj := pass.objectOf(id); obj != nil {
				tainted[obj] = kind
			}
			return true
		})
		if len(tainted) == 0 {
			continue
		}
		taintOf := func(e ast.Expr) (rowaliasKind, bool) {
			id, ok := e.(*ast.Ident)
			if !ok {
				return 0, false
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil {
				return 0, false
			}
			k, ok := tainted[obj]
			return k, ok
		}
		report := func(e ast.Expr, kind rowaliasKind, how string) {
			noun, origin, remedy := kind.describe()
			pass.Reportf(e.Pos(),
				"%s %q obtained from %s is %s without an explicit copy; the producer may reuse its buffer — %s",
				noun, e.(*ast.Ident).Name, origin, how, remedy)
		}
		// Pass 2: find retention sinks.
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "append" && n.Ellipsis == 0 {
					for _, arg := range n.Args[1:] {
						if k, ok := taintOf(arg); ok {
							report(arg, k, "appended to a slice")
						}
					}
				}
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					if i >= len(n.Rhs) {
						continue
					}
					k, ok := taintOf(n.Rhs[i])
					if !ok {
						continue
					}
					switch lhs.(type) {
					case *ast.IndexExpr:
						report(n.Rhs[i], k, "stored into a map or slice element")
					case *ast.SelectorExpr:
						report(n.Rhs[i], k, "stored into a struct field")
					}
				}
			case *ast.CompositeLit:
				for _, el := range n.Elts {
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						el = kv.Value
					}
					if k, ok := taintOf(el); ok {
						report(el, k, "captured in a composite literal")
					}
				}
			case *ast.SendStmt:
				if k, ok := taintOf(n.Value); ok {
					report(n.Value, k, "sent over a channel")
				}
			}
			return true
		})
	}
	return nil
}

// objectOf resolves an identifier from either a definition (r, err := ...) or
// a use (r, err = ...).
func (p *Pass) objectOf(id *ast.Ident) types.Object {
	if obj := p.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return p.TypesInfo.Uses[id]
}

// firstResultIsRow reports whether the call's first result type is value.Row.
func firstResultIsRow(pass *Pass, call *ast.CallExpr) bool {
	tv, ok := pass.TypesInfo.Types[call]
	if !ok {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		return t.Len() > 0 && isValueRow(t.At(0).Type())
	default:
		return isValueRow(t)
	}
}

// firstResultIsBatch reports whether the call's first result type is
// *value.Batch.
func firstResultIsBatch(pass *Pass, call *ast.CallExpr) bool {
	tv, ok := pass.TypesInfo.Types[call]
	if !ok {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		return t.Len() > 0 && isValueBatchPtr(t.At(0).Type())
	default:
		return isValueBatchPtr(t)
	}
}

// firstResultIsCol reports whether the call's first result type is
// *value.Col.
func firstResultIsCol(pass *Pass, call *ast.CallExpr) bool {
	tv, ok := pass.TypesInfo.Types[call]
	if !ok {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		return t.Len() > 0 && isValueColPtr(t.At(0).Type())
	default:
		return isValueColPtr(t)
	}
}

// firstResultIsSel reports whether the call's first result type is value.Sel.
func firstResultIsSel(pass *Pass, call *ast.CallExpr) bool {
	tv, ok := pass.TypesInfo.Types[call]
	if !ok {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		return t.Len() > 0 && isValueSel(t.At(0).Type())
	default:
		return isValueSel(t)
	}
}

// recvIsBatch reports whether the selector's receiver is a value.Batch (by
// value or pointer).
func recvIsBatch(pass *Pass, sel *ast.SelectorExpr) bool {
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok {
		return false
	}
	t := tv.Type
	if isValueBatchPtr(t) {
		return true
	}
	return isPkgType(t, valuePkgSuffix, "Batch")
}