package analysis

import (
	"go/ast"
	"go/types"
)

// RowAlias flags retained references to rows obtained from an Operator's
// Next. The engine contract (internal/engine/operator.go) says a returned row
// is only valid until the next call to Next — producers like NLJoin hand out
// an internal scratch buffer they overwrite on every call — so appending such
// a row to a slice, storing it into a map, field, or composite literal, or
// sending it over a channel without an explicit Clone() is a data-corruption
// bug that only manifests once the producer recycles the buffer.
//
// The check is intraprocedural and name-based: a variable is tainted when it
// is assigned from a call to a method named Next whose first result is
// value.Row; it stays tainted for the rest of the function (the pass is not
// flow-sensitive). Cloned uses (r.Clone()) and element-wise copies
// (append(dst, r...)) are allowed. Deliberate short-lived retention can be
// suppressed with //lint:ignore rowalias <reason>.
var RowAlias = &Analyzer{
	Name: "rowalias",
	Doc:  "flag rows returned by Next retained without Clone()",
	Run:  runRowAlias,
}

func runRowAlias(pass *Pass) error {
	for _, f := range pass.Files {
		tainted := map[types.Object]bool{}
		// Pass 1: find variables bound to Next results.
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Rhs) != 1 {
				return true
			}
			call, ok := as.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Next" {
				return true
			}
			if !firstResultIsRow(pass, call) {
				return true
			}
			id, ok := as.Lhs[0].(*ast.Ident)
			if !ok || id.Name == "_" {
				return true
			}
			if obj := pass.objectOf(id); obj != nil {
				tainted[obj] = true
			}
			return true
		})
		if len(tainted) == 0 {
			continue
		}
		isTainted := func(e ast.Expr) bool {
			id, ok := e.(*ast.Ident)
			if !ok {
				return false
			}
			obj := pass.TypesInfo.Uses[id]
			return obj != nil && tainted[obj]
		}
		report := func(e ast.Expr, how string) {
			pass.Reportf(e.Pos(),
				"row %q obtained from Next is %s without an explicit copy; the producer may reuse its buffer — clone it first (row.Clone())",
				e.(*ast.Ident).Name, how)
		}
		// Pass 2: find retention sinks.
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "append" && n.Ellipsis == 0 {
					for _, arg := range n.Args[1:] {
						if isTainted(arg) {
							report(arg, "appended to a slice")
						}
					}
				}
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					if i >= len(n.Rhs) || !isTainted(n.Rhs[i]) {
						continue
					}
					switch lhs.(type) {
					case *ast.IndexExpr:
						report(n.Rhs[i], "stored into a map or slice element")
					case *ast.SelectorExpr:
						report(n.Rhs[i], "stored into a struct field")
					}
				}
			case *ast.CompositeLit:
				for _, el := range n.Elts {
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						el = kv.Value
					}
					if isTainted(el) {
						report(el, "captured in a composite literal")
					}
				}
			case *ast.SendStmt:
				if isTainted(n.Value) {
					report(n.Value, "sent over a channel")
				}
			}
			return true
		})
	}
	return nil
}

// objectOf resolves an identifier from either a definition (r, err := ...) or
// a use (r, err = ...).
func (p *Pass) objectOf(id *ast.Ident) types.Object {
	if obj := p.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return p.TypesInfo.Uses[id]
}

// firstResultIsRow reports whether the call's first result type is value.Row.
func firstResultIsRow(pass *Pass, call *ast.CallExpr) bool {
	tv, ok := pass.TypesInfo.Types[call]
	if !ok {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		return t.Len() > 0 && isValueRow(t.At(0).Type())
	default:
		return isValueRow(t)
	}
}
