// Package analysis is a small, dependency-free static-analysis framework in
// the spirit of golang.org/x/tools/go/analysis, plus the engine-specific lint
// passes that enforce this repository's unwritten execution contracts:
//
//   - opcontract: Volcano operators follow the Open/Next/Close protocol and
//     Next uses the nil-row exhaustion sentinel (internal/engine/operator.go);
//   - rowalias: rows returned by a child's Next may be reused by the producer
//     and must be cloned before being retained;
//   - valuecmp: value.Value is compared through its comparators (Compare,
//     Equal, Identical) or the Key encoding, never with == / != / switch;
//   - closecheck: errors from Operator Open/Close are never silently dropped;
//   - goexit: goroutines in the execution packages carry a deferred recover
//     so a worker panic becomes a typed error instead of a process crash.
//
// The framework is built directly on go/ast and go/types (the container this
// repo builds in has no module proxy access, so golang.org/x/tools is not
// available); the Analyzer/Pass shapes mirror x/tools so the passes could be
// ported to a real multichecker by swapping the driver.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer describes one lint pass.
type Analyzer struct {
	// Name identifies the pass in diagnostics and //lint:ignore directives.
	Name string
	// Doc is a one-line description shown by `icelint -help`.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass) error
}

// Pass carries one type-checked package through an Analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the diagnostic in the canonical file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// All returns the standard icelint passes: the syntactic contract passes
// from PR 1 plus the flow-sensitive CFG-based passes (budgetbalance,
// cancelcheck, failcover).
func All() []*Analyzer {
	return []*Analyzer{
		OpContract, RowAlias, ValueCmp, CloseCheck, GoExit,
		BudgetBalance, CancelCheck, FailCover,
	}
}

// ignoreRe matches suppression directives of the form
//
//	//lint:ignore pass1,pass2 reason
//
// A directive suppresses matching diagnostics on its own line (trailing
// comment) or on the following line. The reason is mandatory.
var ignoreRe = regexp.MustCompile(`^//lint:ignore\s+(\S+)\s+\S`)

// ignoreSet maps "file:line" to the set of suppressed analyzer names.
type ignoreSet map[string]map[string]bool

func collectIgnores(fset *token.FileSet, files []*ast.File) ignoreSet {
	ig := ignoreSet{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, name := range strings.Split(m[1], ",") {
					for _, line := range []int{pos.Line, pos.Line + 1} {
						key := fmt.Sprintf("%s:%d", pos.Filename, line)
						if ig[key] == nil {
							ig[key] = map[string]bool{}
						}
						ig[key][name] = true
					}
				}
			}
		}
	}
	return ig
}

func (ig ignoreSet) suppressed(d Diagnostic) bool {
	key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
	return ig[key]["all"] || ig[key][d.Analyzer]
}

// RunAnalyzers applies every analyzer to the package and returns the
// surviving diagnostics sorted by position. //lint:ignore directives are
// honored here so every driver (icelint, tests) behaves identically.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			diags:     &diags,
		}
		if err := runGuarded(pkg, a, pass); err != nil {
			return nil, fmt.Errorf("%s: running %s: %w", pkg.Path, a.Name, err)
		}
	}
	ig := collectIgnores(pkg.Fset, pkg.Files)
	kept := diags[:0]
	for _, d := range diags {
		if !ig.suppressed(d) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i].Pos, kept[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return kept, nil
}

// runGuarded runs one analyzer, converting a pass panic into a diagnostic
// attributed to that pass instead of aborting the whole run: one buggy pass
// must not mask the other passes' findings. The diagnostic lands at the
// package's first file so `icelint` output stays position-addressable.
func runGuarded(pkg *Package, a *Analyzer, pass *Pass) (err error) {
	defer func() {
		if r := recover(); r != nil {
			pos := token.Position{Filename: pkg.Path}
			if len(pkg.Files) > 0 {
				pos = pkg.Fset.Position(pkg.Files[0].Pos())
			}
			*pass.diags = append(*pass.diags, Diagnostic{
				Analyzer: a.Name,
				Pos:      pos,
				Message:  fmt.Sprintf("internal error: pass panicked: %v", r),
			})
			err = nil
		}
	}()
	return a.Run(pass)
}

// ---------------------------------------------------------------------------
// Shared type-identification helpers.
//
// Passes identify the engine's contract types structurally by package-path
// suffix so they work both on this module ("smarticeberg/internal/value") and
// on test fixtures that import the same packages.

const (
	valuePkgSuffix  = "internal/value"
	enginePkgSuffix = "internal/engine"
	exprPkgSuffix   = "internal/expr"
)

func namedFrom(t types.Type) *types.Named {
	// Deliberately no pointer unwrapping: a *value.Value compared against nil
	// is pointer equality, which is fine.
	n, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return nil
	}
	return n
}

func isPkgType(t types.Type, pkgSuffix, name string) bool {
	n := namedFrom(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil &&
		(obj.Pkg().Path() == pkgSuffix || strings.HasSuffix(obj.Pkg().Path(), "/"+pkgSuffix))
}

// isValueRow reports whether t is value.Row.
func isValueRow(t types.Type) bool { return isPkgType(t, valuePkgSuffix, "Row") }

// isValueValue reports whether t is value.Value.
func isValueValue(t types.Type) bool { return isPkgType(t, valuePkgSuffix, "Value") }

// isValueBatchPtr reports whether t is *value.Batch (batches travel by
// pointer: NextBatch returns *value.Batch).
func isValueBatchPtr(t types.Type) bool {
	p, ok := types.Unalias(t).(*types.Pointer)
	if !ok {
		return false
	}
	return isPkgType(p.Elem(), valuePkgSuffix, "Batch")
}

// isValueColPtr reports whether t is *value.Col (column views travel by
// pointer: Batch.Col returns *value.Col).
func isValueColPtr(t types.Type) bool {
	p, ok := types.Unalias(t).(*types.Pointer)
	if !ok {
		return false
	}
	return isPkgType(p.Elem(), valuePkgSuffix, "Col")
}

// isValueSel reports whether t is value.Sel (a selection vector).
func isValueSel(t types.Type) bool { return isPkgType(t, valuePkgSuffix, "Sel") }

// isSelKernel reports whether t is expr.SelKernel (a typed selection kernel —
// invoking one processes a whole input window, so kernel loops are drive
// loops for cancellation purposes).
func isSelKernel(t types.Type) bool { return isPkgType(t, exprPkgSuffix, "SelKernel") }

// isZonePred reports whether t is expr.ZonePred (a block-level zone-map
// predicate — a zone-probe loop walks the whole table's block summaries
// without yielding rows, so it drives for cancellation purposes).
func isZonePred(t types.Type) bool { return isPkgType(t, exprPkgSuffix, "ZonePred") }

// isKeyFilterPtr reports whether t is *expr.KeyFilter (a transferred join
// filter; a loop probing MayContain per candidate row covers unbounded rows).
func isKeyFilterPtr(t types.Type) bool {
	p, ok := types.Unalias(t).(*types.Pointer)
	if !ok {
		return false
	}
	return isPkgType(p.Elem(), exprPkgSuffix, "KeyFilter")
}

// operatorInterface locates the engine.Operator interface visible from pkg:
// the package itself when linting internal/engine, or any direct import.
func operatorInterface(pkg *types.Package) *types.Interface {
	candidates := append([]*types.Package{pkg}, pkg.Imports()...)
	for _, p := range candidates {
		if p.Path() != enginePkgSuffix && !strings.HasSuffix(p.Path(), "/"+enginePkgSuffix) {
			continue
		}
		obj := p.Scope().Lookup("Operator")
		if obj == nil {
			continue
		}
		if iface, ok := obj.Type().Underlying().(*types.Interface); ok {
			return iface
		}
	}
	return nil
}

// implementsOperator reports whether T or *T satisfies engine.Operator.
func implementsOperator(t types.Type, iface *types.Interface) bool {
	if iface == nil {
		return false
	}
	return types.Implements(t, iface) || types.Implements(types.NewPointer(t), iface)
}
