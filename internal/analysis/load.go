package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, parsed, and type-checked package.
type Package struct {
	Path     string
	Dir      string
	Standard bool // part of the Go distribution (never analyzed)
	Fset     *token.FileSet
	Files    []*ast.File
	Types    *types.Package
	Info     *types.Info
}

// listedPkg mirrors the subset of `go list -json` output the loader needs.
type listedPkg struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
	CgoFiles   []string
	Imports    []string
	Standard   bool
	Incomplete bool
	Error      *struct{ Err string }
}

// goList shells out to the go command, the only authority on build-tag
// resolution and package membership. -deps emits packages in dependency
// order (imports before importers), which the type-checking loop relies on.
func goList(dir string, patterns []string, deps bool) ([]*listedPkg, error) {
	args := []string{"list"}
	if deps {
		args = append(args, "-deps")
	}
	args = append(args, "-json=Dir,ImportPath,Name,GoFiles,CgoFiles,Imports,Standard,Incomplete,Error")
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	// Resolve build tags as if cgo were off: the pure-Go fallbacks (net's
	// netgo resolver above all) make the whole closure type-checkable from
	// source. Mixing in binary export data for cgo packages would introduce a
	// second identity for their dependencies' types (two `time.Duration`s)
	// and break checking of any package importing both views.
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*listedPkg
	for {
		p := &listedPkg{}
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Loader type-checks packages from source, caching results so that shared
// dependencies (the standard library above all) are checked once per process.
type Loader struct {
	Fset  *token.FileSet
	cache map[string]*Package
}

// NewLoader returns an empty loader with a fresh file set.
func NewLoader() *Loader {
	return &Loader{Fset: token.NewFileSet(), cache: map[string]*Package{}}
}

func (l *Loader) importerFor() types.ImporterFrom {
	return &mapImporter{l: l}
}

type mapImporter struct{ l *Loader }

func (m *mapImporter) Import(path string) (*types.Package, error) {
	return m.ImportFrom(path, "", 0)
}

func (m *mapImporter) ImportFrom(path, dir string, _ types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := m.l.cache[path]; ok {
		return p.Types, nil
	}
	// Standard-library packages import their vendored deps by the unvendored
	// path (`golang.org/x/...`), while go list reports them — and the cache
	// keys them — under `vendor/`.
	if p, ok := m.l.cache["vendor/"+path]; ok {
		return p.Types, nil
	}
	return nil, fmt.Errorf("package %q not loaded (dependency order violation)", path)
}

// Load resolves patterns with `go list -deps` relative to dir and
// type-checks every resulting package from source. It returns the packages
// matched by the patterns' transitive closure; callers filter on Standard to
// decide what to analyze.
func (l *Loader) Load(dir string, patterns []string) ([]*Package, error) {
	listed, err := goList(dir, patterns, true)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, lp := range listed {
		p, err := l.check(lp)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// LoadTargets loads patterns and their dependency closure, returning only
// the packages that match the patterns themselves — the set a lint driver
// should analyze (dependencies are type-checked but not linted).
func (l *Loader) LoadTargets(dir string, patterns []string) ([]*Package, error) {
	targets, err := goList(dir, patterns, false)
	if err != nil {
		return nil, err
	}
	want := map[string]bool{}
	for _, t := range targets {
		want[t.ImportPath] = true
	}
	all, err := l.Load(dir, patterns)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, p := range all {
		if want[p.Path] {
			out = append(out, p)
		}
	}
	return out, nil
}

func (l *Loader) check(lp *listedPkg) (*Package, error) {
	if p, ok := l.cache[lp.ImportPath]; ok {
		return p, nil
	}
	if lp.ImportPath == "unsafe" {
		p := &Package{Path: "unsafe", Standard: true, Fset: l.Fset, Types: types.Unsafe}
		l.cache["unsafe"] = p
		return p, nil
	}
	if lp.Error != nil {
		return nil, fmt.Errorf("package %s: %s", lp.ImportPath, lp.Error.Err)
	}
	if len(lp.CgoFiles) > 0 {
		// No cgo in this module or its (empty) dependency set; if a future
		// import pulls one in, fall back to the binary export data importer.
		tp, err := importer.Default().Import(lp.ImportPath)
		if err != nil {
			return nil, fmt.Errorf("package %s uses cgo and has no export data: %w", lp.ImportPath, err)
		}
		p := &Package{Path: lp.ImportPath, Dir: lp.Dir, Standard: lp.Standard, Fset: l.Fset, Types: tp}
		l.cache[lp.ImportPath] = p
		return p, nil
	}
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l.importerFor(),
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		// Dependencies only contribute their exported API; skipping their
		// function bodies keeps a full ./... load fast and sidesteps
		// compiler-intrinsic oddities in the runtime package.
		IgnoreFuncBodies: lp.Standard,
		Error: func(err error) {
			typeErrs = append(typeErrs, err)
		},
	}
	tp, err := conf.Check(lp.ImportPath, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("type-checking %s: %v", lp.ImportPath, typeErrs[0])
	}
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", lp.ImportPath, err)
	}
	p := &Package{
		Path:     lp.ImportPath,
		Dir:      lp.Dir,
		Standard: lp.Standard,
		Fset:     l.Fset,
		Files:    files,
		Types:    tp,
		Info:     info,
	}
	l.cache[lp.ImportPath] = p
	return p, nil
}

// CheckDir parses and type-checks a directory of fixture files as an
// ad-hoc package named by its directory. deps lists module packages the
// fixtures import (they are loaded first, along with their dependencies).
// The go tool never sees the fixture directory, so fixtures can live under
// testdata/ where `go build ./...` ignores them.
func (l *Loader) CheckDir(moduleDir, fixtureDir string, deps []string) (*Package, error) {
	if len(deps) > 0 {
		if _, err := l.Load(moduleDir, deps); err != nil {
			return nil, err
		}
	}
	entries, err := os.ReadDir(fixtureDir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go files in %s", fixtureDir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(fixtureDir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer: l.importerFor(),
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	path := "fixtures/" + filepath.Base(fixtureDir)
	tp, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", fixtureDir, err)
	}
	return &Package{Path: path, Dir: fixtureDir, Fset: l.Fset, Files: files, Types: tp, Info: info}, nil
}
