package fixtures

import "os"

// MkdirNowhere lives in a file with no Inject sites at all, so the
// diagnostic points at the site catalog instead of a nearby line.
func MkdirNowhere(dir string) error {
	return os.Mkdir(dir, 0o700) // want `no Inject sites in this file`
}
