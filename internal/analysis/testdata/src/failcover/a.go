// Package fixtures exercises the failcover pass: in a package that imports
// internal/failpoint, every raw IO call must be dominated by a
// failpoint.Inject site so the fault matrices can exercise its failure.
package fixtures

import (
	"bufio"
	"io"
	"os"

	"smarticeberg/internal/failpoint"
)

// WriteGuarded is clean: the Inject dominates the write.
func WriteGuarded(path string, b []byte) error {
	if err := failpoint.Inject(failpoint.SpillWrite); err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o600)
}

// WriteUnguarded has no failpoint at all.
func WriteUnguarded(path string, b []byte) error {
	return os.WriteFile(path, b, 0o600) // want `not guarded by a failpoint`
}

// OpenMaybe guards only one branch: the fast path reaches the open with no
// Inject having run.
func OpenMaybe(path string, fast bool) (*os.File, error) {
	if !fast {
		if err := failpoint.Inject(failpoint.SpillRead); err != nil {
			return nil, err
		}
	}
	return os.Open(path) // want `not guarded by a failpoint`
}

// CopyGuarded is clean: one Inject up front covers the whole IO sequence.
func CopyGuarded(dst *bufio.Writer, src *os.File) error {
	if err := failpoint.Inject(failpoint.SpillRead); err != nil {
		return err
	}
	buf := make([]byte, 64)
	if _, err := io.ReadFull(src, buf); err != nil {
		return err
	}
	if _, err := dst.Write(buf); err != nil {
		return err
	}
	return dst.Flush()
}

// FlushUnguarded drops a bufio flush on the floor with no site.
func FlushUnguarded(dst *bufio.Writer) error {
	return dst.Flush() // want `not guarded by a failpoint`
}

// CloseExempt is clean: file Close is deliberately outside the IO set.
func CloseExempt(f *os.File) error {
	return f.Close()
}

// RemoveLate injects only after the removal already happened: order matters.
func RemoveLate(path string) error {
	if err := os.Remove(path); err != nil { // want `not guarded by a failpoint`
		return err
	}
	return failpoint.Inject(failpoint.SpillRemove)
}

// InjectIntoGuarded is clean: the InjectInto variant counts as coverage
// exactly like Inject.
func InjectIntoGuarded(path string, b []byte) (err error) {
	if failpoint.InjectInto(failpoint.SpillWrite, &err) {
		return err
	}
	return os.WriteFile(path, b, 0o600)
}

// InjectIntoOneBranch guards only the slow path, like OpenMaybe.
func InjectIntoOneBranch(path string, fast bool) (err error) {
	if !fast {
		if failpoint.InjectInto(failpoint.SpillWrite, &err) {
			return err
		}
	}
	return os.Truncate(path, 0) // want `not guarded by a failpoint`
}
