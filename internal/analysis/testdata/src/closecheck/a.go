// Package fixtures exercises the closecheck pass: errors from an Operator's
// Open/Close must be handled or explicitly discarded.
package fixtures

import (
	"smarticeberg/internal/engine"
)

// DeferBad silently drops a deferred Close error.
func DeferBad(op engine.Operator) error {
	if err := op.Open(); err != nil {
		return err
	}
	defer op.Close() // want `deferred op.Close\(\) dropped`
	_, err := op.Next()
	return err
}

// StmtBad drops the error of a bare Close statement.
func StmtBad(op engine.Operator) {
	op.Close() // want `op.Close\(\) dropped`
}

// OpenBad drops an Open error.
func OpenBad(op engine.Operator) {
	op.Open() // want `op.Open\(\) dropped`
}

// RunGood propagates the Close error through a named return.
func RunGood(op engine.Operator) (err error) {
	if err := op.Open(); err != nil {
		return err
	}
	defer func() {
		if cerr := op.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	_, err = op.Next()
	return err
}

// DiscardGood discards visibly, which the pass allows.
func DiscardGood(op engine.Operator) {
	_ = op.Close()
}
