// Fixtures for the temp-file side of closecheck: os.CreateTemp/os.MkdirTemp
// results must be removed or handed off before the function returns.
package fixtures

import (
	"os"
	"path/filepath"
)

// TempLeakFile never removes the temp file it creates.
func TempLeakFile() error {
	f, err := os.CreateTemp("", "scratch-*") // want `os.CreateTemp result f is neither removed`
	if err != nil {
		return err
	}
	_, err = f.Write([]byte("data"))
	_ = f.Close()
	return err
}

// TempLeakDir never removes the temp directory.
func TempLeakDir() (int, error) {
	dir, err := os.MkdirTemp("", "work-*") // want `os.MkdirTemp result dir is neither removed`
	if err != nil {
		return 0, err
	}
	if dir == "" {
		return 0, nil
	}
	ents, err := os.ReadDir(filepath.Dir("x"))
	return len(ents), err
}

// TempRemoveGood cleans the file up with a deferred os.Remove.
func TempRemoveGood() error {
	f, err := os.CreateTemp("", "scratch-*")
	if err != nil {
		return err
	}
	defer os.Remove(f.Name())
	_, err = f.Write([]byte("data"))
	_ = f.Close()
	return err
}

// TempRemoveAllGood cleans the directory with os.RemoveAll behind a branch;
// presence counts as reachable for this check.
func TempRemoveAllGood(keep bool) error {
	dir, err := os.MkdirTemp("", "work-*")
	if err != nil {
		return err
	}
	if !keep {
		return os.RemoveAll(dir)
	}
	return nil
}

type holder struct{ dir string }

// TempEscapeStruct hands the directory off inside a returned struct — the
// caller owns cleanup now.
func TempEscapeStruct() (*holder, error) {
	dir, err := os.MkdirTemp("", "work-*")
	if err != nil {
		return nil, err
	}
	return &holder{dir: dir}, nil
}

// TempEscapeReturn returns the path itself.
func TempEscapeReturn() (string, error) {
	dir, err := os.MkdirTemp("", "work-*")
	return dir, err
}

// TempEscapeCall passes the path to another function.
func TempEscapeCall() error {
	f, err := os.CreateTemp("", "scratch-*")
	if err != nil {
		return err
	}
	register(f.Name())
	return f.Close()
}

func register(string) {}
