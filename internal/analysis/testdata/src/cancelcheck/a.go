// Package fixtures exercises the cancelcheck pass: loops in operator
// implementations that drive a child via Next/NextBatch must reach a
// cancellation check on every iteration path.
package fixtures

import (
	"context"

	"smarticeberg/internal/engine"
	"smarticeberg/internal/expr"
	"smarticeberg/internal/value"
)

func keep(r value.Row) bool { return len(r) > 0 }

// Drain drives its child with no check at all.
type Drain struct {
	child engine.Operator
	ec    *engine.ExecContext
	ctx   context.Context
	last  value.Row
}

func (d *Drain) Schema() value.Schema        { return d.child.Schema() }
func (d *Drain) Open() error                 { return d.child.Open() }
func (d *Drain) Close() error                { return d.child.Close() }
func (d *Drain) Describe() string            { return "drain" }
func (d *Drain) Children() []engine.Operator { return []engine.Operator{d.child} }

func (d *Drain) Next() (value.Row, error) {
	for { // want `without a cancellation check`
		r, err := d.child.Next()
		if err != nil {
			return nil, err
		}
		if r == nil {
			return nil, nil
		}
		if keep(r) {
			return r, nil
		}
	}
}

// checked drains with an ExecContext.Err poll on every iteration: clean.
func (d *Drain) checked() error {
	for {
		if err := d.ec.Err(); err != nil {
			return err
		}
		r, err := d.child.Next()
		if err != nil {
			return err
		}
		if r == nil {
			return nil
		}
		d.last = r
	}
}

// skippy checks — but a continue path jumps back before reaching the check.
func (d *Drain) skippy() error {
	for { // want `without a cancellation check`
		r, err := d.child.Next()
		if err != nil {
			return err
		}
		if r == nil {
			return nil
		}
		if !keep(r) {
			continue
		}
		if err := d.ec.Err(); err != nil {
			return err
		}
		d.last = r
	}
}

// polled uses the non-blocking ctx.Done() select idiom: the channel operand
// is evaluated every iteration, so every path is checked. Clean.
func (d *Drain) polled() error {
	for {
		select {
		case <-d.ctx.Done():
			return d.ctx.Err()
		default:
		}
		r, err := d.child.Next()
		if err != nil {
			return err
		}
		if r == nil {
			return nil
		}
		d.last = r
	}
}

// bounded iterates rows it already owns without driving anything: loops that
// pull nothing from a child are out of scope. Clean.
func (d *Drain) bounded(rows []value.Row) int {
	n := 0
	for _, r := range rows {
		if keep(r) {
			n++
		}
	}
	return n
}

// BatchDrain drives NextBatch without a per-iteration stepChunk: flagged.
type BatchDrain struct {
	child engine.BatchOperator
	ec    *engine.ExecContext
	size  int
}

func (b *BatchDrain) Schema() value.Schema        { return b.child.Schema() }
func (b *BatchDrain) Open() error                 { return b.child.Open() }
func (b *BatchDrain) Close() error                { return b.child.Close() }
func (b *BatchDrain) Describe() string            { return "batch drain" }
func (b *BatchDrain) Children() []engine.Operator { return []engine.Operator{b.child} }
func (b *BatchDrain) BatchSize() int              { return b.size }

func (b *BatchDrain) Next() (value.Row, error) { return nil, nil }

func (b *BatchDrain) NextBatch() (*value.Batch, error) {
	for { // want `without a cancellation check`
		batch, err := b.child.NextBatch()
		if err != nil {
			return nil, err
		}
		if batch == nil {
			return nil, nil
		}
		if batch.Len() > 0 {
			return batch, nil
		}
	}
}

// freeDrain is a plain function, not an operator method: driver loops in
// tests and tools are out of scope. Clean.
func freeDrain(op engine.Operator) error {
	for {
		r, err := op.Next()
		if err != nil {
			return err
		}
		if r == nil {
			return nil
		}
	}
}

// KernScan mimics a morsel worker: its loops invoke a typed selection kernel,
// each call burning through a whole input window. Kernel loops are drive
// loops — they must poll cancellation on every iteration path too.
type KernScan struct {
	ec   *engine.ExecContext
	cols *value.Columns
	kern expr.SelKernel
	size int
	out  value.Sel
}

func (k *KernScan) Schema() value.Schema        { return nil }
func (k *KernScan) Open() error                 { return nil }
func (k *KernScan) Close() error                { return nil }
func (k *KernScan) Describe() string            { return "kern scan" }
func (k *KernScan) Children() []engine.Operator { return nil }
func (k *KernScan) BatchSize() int              { return k.size }
func (k *KernScan) Next() (value.Row, error)    { return nil, nil }

func (k *KernScan) NextBatch() (*value.Batch, error) { return nil, nil }

// scanUnchecked sweeps the kernel across sub-windows with no cancellation
// poll: a cancelled query keeps filtering until the table runs out.
func (k *KernScan) scanUnchecked(lo, hi int) error {
	for lo < hi { // want `loop drives selection kernel k.kern without a cancellation check`
		mid := lo + k.size
		if mid > hi {
			mid = hi
		}
		var err error
		k.out, err = k.kern(k.cols, lo, mid, nil, k.out)
		if err != nil {
			return err
		}
		lo = mid
	}
	return nil
}

// scanChecked leads every sub-window with an ExecContext.Err poll, so each
// iteration path carries a check. Clean.
func (k *KernScan) scanChecked(lo, hi int) error {
	for lo < hi {
		if err := k.ec.Err(); err != nil {
			return err
		}
		mid := lo + k.size
		if mid > hi {
			mid = hi
		}
		var err error
		k.out, err = k.kern(k.cols, lo, mid, nil, k.out)
		if err != nil {
			return err
		}
		lo = mid
	}
	return nil
}

// ZoneScan mimics the data-skipping scan: its loops consult a zone-map
// predicate per block and a transferred Bloom filter per candidate row.
// Both loop shapes sweep unbounded state — block summaries cover the whole
// table, probe candidates the whole window — so they are drive loops too.
type ZoneScan struct {
	ec     *engine.ExecContext
	zones  *value.ZoneMaps
	zp     expr.ZonePred
	filter *expr.KeyFilter
	size   int
}

func (z *ZoneScan) Schema() value.Schema        { return nil }
func (z *ZoneScan) Open() error                 { return nil }
func (z *ZoneScan) Close() error                { return nil }
func (z *ZoneScan) Describe() string            { return "zone scan" }
func (z *ZoneScan) Children() []engine.Operator { return nil }
func (z *ZoneScan) BatchSize() int              { return z.size }
func (z *ZoneScan) Next() (value.Row, error)    { return nil, nil }

func (z *ZoneScan) NextBatch() (*value.Batch, error) { return nil, nil }

// zonesUnchecked walks every block summary with no cancellation poll: a
// cancelled query keeps pruning until the zone maps run out.
func (z *ZoneScan) zonesUnchecked() int {
	kept := 0
	for b := 0; b < z.zones.NumBlocks(); b++ { // want `loop drives zone predicate z.zp without a cancellation check`
		if z.zp(z.zones, b) {
			kept++
		}
	}
	return kept
}

// zonesChecked polls ExecContext.Err before each block probe. Clean.
func (z *ZoneScan) zonesChecked() (int, error) {
	kept := 0
	for b := 0; b < z.zones.NumBlocks(); b++ {
		if err := z.ec.Err(); err != nil {
			return 0, err
		}
		if z.zp(z.zones, b) {
			kept++
		}
	}
	return kept, nil
}

// probesUnchecked probes the transferred Bloom filter once per candidate row
// with no poll on the loop path: flagged.
func (z *ZoneScan) probesUnchecked(keys [][]byte) int {
	hits := 0
	for _, k := range keys { // want `loop drives Bloom probe z.filter.MayContain without a cancellation check`
		if z.filter.MayContain(k) {
			hits++
		}
	}
	return hits
}

// probesChecked leads every probe with an Err poll. Clean.
func (z *ZoneScan) probesChecked(keys [][]byte) (int, error) {
	hits := 0
	for _, k := range keys {
		if err := z.ec.Err(); err != nil {
			return 0, err
		}
		if z.filter.MayContain(k) {
			hits++
		}
	}
	return hits, nil
}

// scanTrailingChecked polls only between sub-windows (the old sequential-scan
// shape): the final iteration's path back to the header skips the check, so
// the loop is flagged — the unchecked tail is exactly where a morsel worker
// would outlive a cancelled consumer.
func (k *KernScan) scanTrailingChecked(lo, hi int) error {
	for lo < hi { // want `loop drives selection kernel k.kern without a cancellation check`
		mid := lo + k.size
		if mid > hi {
			mid = hi
		}
		var err error
		k.out, err = k.kern(k.cols, lo, mid, nil, k.out)
		if err != nil {
			return err
		}
		lo = mid
		if lo < hi {
			if err := k.ec.Err(); err != nil {
				return err
			}
		}
	}
	return nil
}
