// Package fixtures exercises the goexit pass: goroutines in the execution
// packages must begin with a deferred recover (or a containment helper such
// as engine.CapturePanic) so a panic cannot crash the process.
package fixtures

import (
	"sync"

	"smarticeberg/internal/engine"
)

func expensive() int { return 1 }

// BareBad launches a goroutine with no containment at all.
func BareBad() {
	go func() { // want `goroutine has no deferred recover`
		_ = expensive()
	}()
}

// RecoverGood contains panics with an inline deferred recover.
func RecoverGood() {
	go func() {
		defer func() {
			if r := recover(); r != nil {
				_ = r
			}
		}()
		_ = expensive()
	}()
}

// CaptureGood uses the engine's containment helper.
func CaptureGood() {
	go func() {
		var err error
		defer engine.CapturePanic("fixture worker", &err)
		_ = expensive()
	}()
}

// LateDeferGood: the recover defer need not be the first statement, only a
// top-level one — `defer wg.Done()` commonly comes first.
func LateDeferGood(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer func() {
			if r := recover(); r != nil {
				_ = r
			}
		}()
		_ = expensive()
	}()
}

// NestedOnlyBad: a recover inside a nested callback does not protect the
// goroutine's own frame.
func NestedOnlyBad() {
	go func() { // want `goroutine has no deferred recover`
		f := func() {
			defer func() { _ = recover() }()
		}
		f()
	}()
}

// NamedBad starts a package function that lacks containment.
func NamedBad() {
	go worker() // want `goroutine has no deferred recover`
}

func worker() {
	_ = expensive()
}

// NamedGood starts a package function that recovers.
func NamedGood() {
	go safeWorker()
}

func safeWorker() {
	defer func() { _ = recover() }()
	_ = expensive()
}

// OpaqueOK: the pass cannot see through a function-typed variable and gives
// the callee the benefit of the doubt.
func OpaqueOK(fn func()) {
	go fn()
}
