// Package fixtures exercises the valuecmp pass: value.Value must be compared
// through the comparators in internal/value, never with Go equality.
package fixtures

import (
	"sync"

	"smarticeberg/internal/value"
)

// EqBad uses Go equality on two SQL values.
func EqBad(a, b value.Value) bool {
	return a == b // want `compared with ==`
}

// NeqBad uses Go inequality.
func NeqBad(a, b value.Value) bool {
	return a != b // want `compared with !=`
}

// EqGood goes through the SQL comparator.
func EqGood(a, b value.Value) bool {
	return value.Identical(a, b)
}

// PtrGood compares pointers, which is ordinary Go identity, not SQL equality.
func PtrGood(a, b *value.Value) bool {
	return a == b && a != nil
}

// KindGood compares kinds, which are plain enums.
func KindGood(a, b value.Value) bool {
	return a.K == b.K
}

// SwitchBad dispatches on a value with Go equality per case.
func SwitchBad(v value.Value) int {
	switch v { // want `switch on a value.Value`
	case value.NewInt(1):
		return 1
	}
	return 0
}

// SwitchGood dispatches on the kind tag.
func SwitchGood(v value.Value) int {
	switch v.K {
	case value.Int:
		return 1
	}
	return 0
}

// BadIndex groups values under Go equality.
var BadIndex map[value.Value]int // want `map keyed by value.Value`

// GoodIndex groups under the Identical relation via the key encoding.
func GoodIndex(rows []value.Row) map[string]int {
	idx := make(map[string]int)
	for _, r := range rows {
		idx[value.Key(r)]++
	}
	return idx
}

// SyncStoreBad hides a value.Value map key behind sync.Map's any parameter.
func SyncStoreBad(m *sync.Map, v value.Value) {
	m.Store(v, 1) // want `sync.Map keyed by value.Value`
}

// SyncLoadBad probes a sync.Map with a raw value key.
func SyncLoadBad(m *sync.Map, v value.Value) (any, bool) {
	return m.Load(v) // want `sync.Map keyed by value.Value`
}

// SyncLoadOrStoreBad is the racy-insert variant of the same bug, on a
// non-pointer receiver.
func SyncLoadOrStoreBad(v value.Value) {
	var m sync.Map
	m.LoadOrStore(v, 1) // want `sync.Map keyed by value.Value`
	m.Delete(v)         // want `sync.Map keyed by value.Value`
}

// SyncGood encodes the key first, like any other map.
func SyncGood(m *sync.Map, v value.Value) {
	m.Store(value.Key([]value.Value{v}), 1)
}
