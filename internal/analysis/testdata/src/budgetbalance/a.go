// Package fixtures exercises the budgetbalance pass: every Budget.Reserve /
// ExecContext.Charge in a function that releases locally must be balanced by
// a Release on every exit path, or covered by a deferred Release.
package fixtures

import (
	"errors"

	"smarticeberg/internal/engine"
	"smarticeberg/internal/resource"
)

// DeferRelease is clean: the deferred Release covers every exit, including
// the error return and the panic.
func DeferRelease(b *resource.Budget, n int64, bad bool) error {
	if err := b.Reserve("defer-release", n); err != nil {
		return err
	}
	defer b.Release(n)
	if bad {
		panic("boom")
	}
	if n > 100 {
		return errors.New("too big")
	}
	return nil
}

// DeferredLitRelease is clean: the Release is inside a deferred closure.
func DeferredLitRelease(b *resource.Budget, n int64, bad bool) error {
	if err := b.Reserve("defer-lit", n); err != nil {
		return err
	}
	defer func() {
		b.Release(n)
	}()
	if bad {
		return errors.New("bad")
	}
	return nil
}

// EarlyReturnLeak forgets the Release on the early error return.
func EarlyReturnLeak(b *resource.Budget, n int64, bad bool) error {
	if err := b.Reserve("early-return", n); err != nil { // want `not balanced by a Release`
		return err
	}
	if bad {
		return errors.New("leaks the reservation")
	}
	b.Release(n)
	return nil
}

// PanicPathLeak releases on the normal path but not before the panic.
func PanicPathLeak(ec *engine.ExecContext, n int64, bad bool) {
	if err := ec.Charge("panic-path", n); err != nil { // want `not balanced by a Release`
		return
	}
	if bad {
		panic("leaks the charge")
	}
	ec.Release(n)
}

// FailureHandled is clean: on the failure edge nothing was charged, and the
// success path releases.
func FailureHandled(b *resource.Budget, n int64) error {
	if err := b.Reserve("failure-handled", n); err != nil {
		return err
	}
	b.Release(n)
	return nil
}

// CondReserve tests the call directly in the condition, spillVictim-style.
// Clean: the true edge means nothing was charged.
func CondReserve(b *resource.Budget, n int64, bad bool) {
	if b.Reserve("cond-reserve", n) != nil {
		return
	}
	if bad {
		b.Release(n)
		return
	}
	b.Release(n)
}

type sink struct{ total int64 }

func (s *sink) add(n int64) { s.total += n }

// HandoffAmount is clean: passing the reserved amount to the sink transfers
// ownership — whoever drains the sink releases.
func HandoffAmount(b *resource.Budget, s *sink, n int64) error {
	if err := b.Reserve("handoff", n); err != nil {
		return err
	}
	if s == nil {
		b.Release(n)
		return errors.New("no sink")
	}
	s.add(n)
	return nil
}

// CrossFunctionCharge never releases: the pairing lives in another method
// (Open charges, Close releases), which is beyond the intraprocedural pass —
// the function is skipped entirely rather than guessed at.
func CrossFunctionCharge(ec *engine.ExecContext, n int64) error {
	if err := ec.Charge("cross-function", n); err != nil {
		return err
	}
	return nil
}

// AcquireDeferRelease is clean: the handle's deferred Release covers every
// exit, including the panic.
func AcquireDeferRelease(b *resource.Budget, n int64, bad bool) error {
	slot, err := b.Acquire("acq-defer", n)
	if err != nil {
		return err
	}
	defer slot.Release()
	if bad {
		panic("boom")
	}
	return nil
}

// AcquireQueueLeak mirrors an admission queue that frees its slot when
// admitted but forgets it on the shed path.
func AcquireQueueLeak(b *resource.Budget, shed bool) error {
	slot, err := b.Acquire("queue-slot", 1) // want `not balanced by a Release`
	if err != nil {
		return err
	}
	if shed {
		return errors.New("shed without freeing the slot")
	}
	slot.Release()
	return nil
}

type holder struct{ res *resource.Reservation }

// AcquireHandoff is clean: storing the handle transfers ownership — whoever
// holds it now owns the Release — and the local reject path releases.
func AcquireHandoff(b *resource.Budget, h *holder, n int64) error {
	res, err := b.Acquire("acq-handoff", n)
	if err != nil {
		return err
	}
	if h == nil {
		res.Release()
		return errors.New("no holder")
	}
	h.res = res
	return nil
}

// AcquireFailureHandled is clean: nothing was charged on the failure edge,
// and the success path releases explicitly.
func AcquireFailureHandled(b *resource.Budget, n int64) error {
	slot, err := b.Acquire("acq-ok", n)
	if err != nil {
		return err
	}
	slot.Release()
	return nil
}
