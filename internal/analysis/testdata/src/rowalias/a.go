// Package fixtures exercises the rowalias pass: rows handed out by Next may
// alias a producer-owned buffer and must be cloned before being retained.
package fixtures

import (
	"smarticeberg/internal/engine"
	"smarticeberg/internal/value"
)

// CollectBad buffers raw Next rows.
func CollectBad(op engine.Operator) ([]value.Row, error) {
	var out []value.Row
	for {
		r, err := op.Next()
		if err != nil || r == nil {
			return out, err
		}
		out = append(out, r) // want `appended to a slice`
	}
}

// CollectGood clones before buffering.
func CollectGood(op engine.Operator) ([]value.Row, error) {
	var out []value.Row
	for {
		r, err := op.Next()
		if err != nil || r == nil {
			return out, err
		}
		out = append(out, r.Clone())
	}
}

// SpreadGood copies the row's values element-wise, which is safe.
func SpreadGood(op engine.Operator) (value.Row, error) {
	var flat value.Row
	r, err := op.Next()
	if err != nil || r == nil {
		return flat, err
	}
	flat = append(flat, r...)
	return flat, nil
}

// MapBad indexes a raw row into a map.
func MapBad(op engine.Operator, m map[string]value.Row) error {
	r, err := op.Next()
	if err != nil || r == nil {
		return err
	}
	m["last"] = r // want `stored into a map or slice element`
	return nil
}

// Holder retains the last row it saw.
type Holder struct {
	last value.Row
}

// FieldBad stores a raw row into a field.
func (h *Holder) FieldBad(op engine.Operator) error {
	r, err := op.Next()
	if err != nil {
		return err
	}
	h.last = r // want `stored into a struct field`
	return nil
}

// FieldIgnored shows a justified suppression.
func (h *Holder) FieldIgnored(op engine.Operator) error {
	r, err := op.Next()
	if err != nil {
		return err
	}
	//lint:ignore rowalias fixture demonstrating a justified short-lived retention
	h.last = r
	return nil
}

type pair struct {
	row value.Row
}

// LiteralBad captures a raw row in a composite literal.
func LiteralBad(op engine.Operator) (pair, error) {
	r, err := op.Next()
	if err != nil {
		return pair{}, err
	}
	return pair{row: r}, nil // want `captured in a composite literal`
}

// SendBad ships a raw row to another goroutine.
func SendBad(op engine.Operator, ch chan value.Row) error {
	r, err := op.Next()
	if err != nil {
		return err
	}
	ch <- r // want `sent over a channel`
	return nil
}

// BatchCollectBad buffers raw NextBatch chunks: the producer reuses the
// chunk's buffer on every call.
func BatchCollectBad(op engine.BatchOperator) ([]*value.Batch, error) {
	var out []*value.Batch
	for {
		b, err := op.NextBatch()
		if err != nil || b == nil {
			return out, err
		}
		out = append(out, b) // want `appended to a slice`
	}
}

// BatchCollectGood clones each chunk before buffering.
func BatchCollectGood(op engine.BatchOperator) ([]*value.Batch, error) {
	var out []*value.Batch
	for {
		b, err := op.NextBatch()
		if err != nil || b == nil {
			return out, err
		}
		out = append(out, b.Clone())
	}
}

// BatchRowsGood drains a chunk through CloneRows, which copies.
func BatchRowsGood(op engine.BatchOperator) ([]value.Row, error) {
	var out []value.Row
	for {
		b, err := op.NextBatch()
		if err != nil || b == nil {
			return out, err
		}
		out = b.CloneRows(out)
	}
}

// BatchHolder retains the last chunk it saw.
type BatchHolder struct {
	last *value.Batch
}

// BatchFieldBad stores a raw chunk into a field.
func (h *BatchHolder) BatchFieldBad(op engine.BatchOperator) error {
	b, err := op.NextBatch()
	if err != nil {
		return err
	}
	h.last = b // want `stored into a struct field`
	return nil
}

// BatchRowBad retains a row sliced out of a chunk: it aliases the chunk's
// buffer and dies with it.
func BatchRowBad(op engine.BatchOperator) ([]value.Row, error) {
	var out []value.Row
	b, err := op.NextBatch()
	if err != nil || b == nil {
		return out, err
	}
	for i := 0; i < b.Len(); i++ {
		r := b.Row(i)
		out = append(out, r) // want `appended to a slice`
	}
	return out, nil
}

// BatchRowGood clones the sliced row before retaining it.
func BatchRowGood(op engine.BatchOperator) ([]value.Row, error) {
	var out []value.Row
	b, err := op.NextBatch()
	if err != nil || b == nil {
		return out, err
	}
	for i := 0; i < b.Len(); i++ {
		r := b.Row(i)
		out = append(out, r.Clone())
	}
	return out, nil
}

// BatchSendBad ships a raw chunk to another goroutine.
func BatchSendBad(op engine.BatchOperator, ch chan *value.Batch) error {
	b, err := op.NextBatch()
	if err != nil {
		return err
	}
	ch <- b // want `sent over a channel`
	return nil
}

// ColHolder retains columnar views of the last chunk it saw.
type ColHolder struct {
	col *value.Col
	sel value.Sel
}

// ColFieldBad stores a column view into a field: the view points into the
// producer-owned column set and inherits the batch's validity window.
func (h *ColHolder) ColFieldBad(op engine.BatchOperator) error {
	b, err := op.NextBatch()
	if err != nil || b == nil {
		return err
	}
	c := b.Col(0)
	h.col = c // want `column view "c" obtained from Batch.Col is stored into a struct field`
	return nil
}

// ColCollectBad buffers raw column views across chunks.
func ColCollectBad(op engine.BatchOperator) ([]*value.Col, error) {
	var out []*value.Col
	for {
		b, err := op.NextBatch()
		if err != nil || b == nil {
			return out, err
		}
		c := b.Col(0)
		out = append(out, c) // want `column view "c" obtained from Batch.Col is appended to a slice`
	}
}

// ColReadGood copies the values out of the view instead of retaining it,
// which is safe: value.Value is immutable once constructed.
func ColReadGood(op engine.BatchOperator) ([]value.Value, error) {
	var out []value.Value
	for {
		b, err := op.NextBatch()
		if err != nil || b == nil {
			return out, err
		}
		c := b.Col(0)
		s := b.Sel()
		for _, idx := range s {
			out = append(out, c.Value(int(idx)))
		}
	}
}

// SelFieldBad stores the selection vector into a field: the producer rewrites
// it on every chunk.
func (h *ColHolder) SelFieldBad(op engine.BatchOperator) error {
	b, err := op.NextBatch()
	if err != nil || b == nil {
		return err
	}
	s := b.Sel()
	h.sel = s // want `selection vector "s" obtained from Batch.Sel is stored into a struct field`
	return nil
}

// SelSendBad ships a raw selection vector to another goroutine.
func SelSendBad(op engine.BatchOperator, ch chan value.Sel) error {
	b, err := op.NextBatch()
	if err != nil || b == nil {
		return err
	}
	s := b.Sel()
	ch <- s // want `sent over a channel`
	return nil
}

// SelSpreadGood copies the selection indices element-wise, which is safe.
func SelSpreadGood(op engine.BatchOperator) (value.Sel, error) {
	var keep value.Sel
	b, err := op.NextBatch()
	if err != nil || b == nil {
		return keep, err
	}
	s := b.Sel()
	keep = append(keep, s...)
	return keep, nil
}
