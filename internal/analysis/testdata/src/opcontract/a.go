// Package fixtures exercises the opcontract pass: operators must define the
// Open/Next/Close protocol explicitly, on pointer receivers, and Next must
// have an exhaustion-sentinel path.
package fixtures

import (
	"smarticeberg/internal/engine"
	"smarticeberg/internal/value"
)

// GoodScan is a clean, protocol-following operator.
type GoodScan struct {
	rows []value.Row
	pos  int
}

func (s *GoodScan) Schema() value.Schema { return nil }
func (s *GoodScan) Open() error          { s.pos = 0; return nil }
func (s *GoodScan) Next() (value.Row, error) {
	if s.pos >= len(s.rows) {
		return nil, nil
	}
	r := s.rows[s.pos]
	s.pos++
	return r, nil
}
func (s *GoodScan) Close() error              { return nil }
func (s *GoodScan) Describe() string          { return "good scan" }
func (s *GoodScan) Children() []engine.Operator { return nil }

// GoodWrap delegates Next to its child — also a valid sentinel path.
type GoodWrap struct {
	child engine.Operator
}

func (w *GoodWrap) Schema() value.Schema        { return w.child.Schema() }
func (w *GoodWrap) Open() error                 { return w.child.Open() }
func (w *GoodWrap) Next() (value.Row, error)    { return w.child.Next() }
func (w *GoodWrap) Close() error                { return w.child.Close() }
func (w *GoodWrap) Describe() string            { return "good wrap" }
func (w *GoodWrap) Children() []engine.Operator { return []engine.Operator{w.child} }

// BadNext fabricates rows forever and never signals exhaustion.
type BadNext struct {
	row value.Row
}

func (b *BadNext) Schema() value.Schema { return nil }
func (b *BadNext) Open() error          { return nil }
func (b *BadNext) Next() (value.Row, error) { // want `never returns the nil-row exhaustion sentinel`
	return b.row.Clone(), nil
}
func (b *BadNext) Close() error              { return nil }
func (b *BadNext) Describe() string          { return "bad next" }
func (b *BadNext) Children() []engine.Operator { return nil }

// ValueRecv advances its cursor on a value receiver, so the position is lost
// on every call.
type ValueRecv struct {
	pos int
}

func (v *ValueRecv) Schema() value.Schema { return nil }
func (v *ValueRecv) Open() error          { return nil }
func (v ValueRecv) Next() (value.Row, error) { // want `value receiver`
	v.pos++
	return nil, nil
}
func (v *ValueRecv) Close() error              { return nil }
func (v *ValueRecv) Describe() string          { return "value recv" }
func (v *ValueRecv) Children() []engine.Operator { return nil }

// Inherited gets the whole protocol by embedding instead of defining it.
type Inherited struct { // want `inherits Open, Next, Close from an embedded type`
	*GoodScan
	extra int
}
