package analysis

import (
	"go/ast"
	"go/types"
)

// CloseCheck flags calls to an engine.Operator's Open or Close whose error
// result is silently discarded — as a bare statement, a defer, or a go
// statement. Operator compositions propagate child failures through these
// two methods (a Sort that materializes in Open, a scan that flushes in
// Close), so dropping the error hides real execution failures. An explicit
// `_ = op.Close()` is treated as a deliberate, visible discard and allowed.
//
// It also flags os.CreateTemp / os.MkdirTemp results that a function
// neither cleans up (no os.Remove / os.RemoveAll reachable in the same
// function referencing the result) nor hands off (returned, stored,
// passed to another call) — a leaked temp file survives the process, which
// the spill subsystem's cleanup guarantees forbid.
var CloseCheck = &Analyzer{
	Name: "closecheck",
	Doc:  "flag dropped errors from Operator Open/Close calls and leaked temp files",
	Run:  runCloseCheck,
}

func runCloseCheck(pass *Pass) error {
	runTempCleanup(pass)
	iface := operatorInterface(pass.Pkg)
	if iface == nil {
		return nil
	}
	check := func(e ast.Expr, how string) {
		call, ok := e.(*ast.CallExpr)
		if !ok {
			return
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Open" && sel.Sel.Name != "Close") {
			return
		}
		tv, ok := pass.TypesInfo.Types[sel.X]
		if !ok || !implementsOperator(tv.Type, iface) {
			return
		}
		pass.Reportf(call.Pos(),
			"error from %s%s.%s() dropped; Open/Close propagate child operator failures — handle it or discard explicitly with _ =",
			how, exprString(sel.X), sel.Sel.Name)
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				check(n.X, "")
			case *ast.DeferStmt:
				check(n.Call, "deferred ")
			case *ast.GoStmt:
				check(n.Call, "go ")
			}
			return true
		})
	}
	return nil
}

// runTempCleanup scans every function for os.CreateTemp / os.MkdirTemp
// results that neither reach a cleanup call nor escape the function. The
// analysis is deliberately shallow and lenient: storing the result anywhere
// (a return, a struct literal, another variable, an argument to any call
// other than the cleanup functions themselves) transfers responsibility and
// silences the check. Only the clear bug — a temp path that provably dies
// with the function without ever being removed — is reported.
func runTempCleanup(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkTempCleanup(pass, fd)
		}
	}
}

// osCall returns the called function's name when fn is a direct selector on
// the os package ("CreateTemp", "Remove", ...), and "" otherwise.
func osCall(pass *Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != "os" {
		return ""
	}
	return sel.Sel.Name
}

type tempResource struct {
	obj     types.Object
	assign  *ast.AssignStmt
	creator string // "CreateTemp" or "MkdirTemp"
	cleaned bool
	escaped bool
}

func checkTempCleanup(pass *Pass, fd *ast.FuncDecl) {
	// Pass 1: the temp resources this function creates.
	var res []*tempResource
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		name := osCall(pass, call)
		if name != "CreateTemp" && name != "MkdirTemp" {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		obj := pass.TypesInfo.ObjectOf(id)
		if obj == nil {
			return true
		}
		res = append(res, &tempResource{obj: obj, assign: as, creator: name})
		return true
	})
	if len(res) == 0 {
		return
	}
	refs := func(e ast.Expr, r *tempResource) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == r.obj {
				found = true
			}
			return !found
		})
		return found
	}
	// refsOutsideCalls ignores call subtrees: calls are judged separately
	// (cleanup vs hand-off by argument), so `_, err = f.Write(p)` is a use
	// of f, not an escape of it.
	refsOutsideCalls := func(e ast.Expr, r *tempResource) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if found {
				return false
			}
			if _, ok := n.(*ast.CallExpr); ok {
				return false
			}
			if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == r.obj {
				found = true
			}
			return !found
		})
		return found
	}
	// Pass 2: for each resource, find a cleanup or an escape anywhere in
	// the function (reachability is approximated by presence — a cleanup
	// behind a branch still counts, keeping the check low-noise).
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			switch osCall(pass, n) {
			case "Remove", "RemoveAll":
				for _, r := range res {
					for _, arg := range n.Args {
						if refs(arg, r) {
							r.cleaned = true
						}
					}
				}
				return false
			default:
				for _, r := range res {
					for _, arg := range n.Args {
						if refs(arg, r) {
							r.escaped = true
						}
					}
				}
			}
		case *ast.AssignStmt:
			for _, r := range res {
				if n == r.assign {
					continue
				}
				for _, rhs := range n.Rhs {
					if refsOutsideCalls(rhs, r) {
						r.escaped = true
					}
				}
			}
		case *ast.ReturnStmt:
			for _, r := range res {
				for _, e := range n.Results {
					if refsOutsideCalls(e, r) {
						r.escaped = true
					}
				}
			}
		case *ast.SendStmt:
			for _, r := range res {
				if refsOutsideCalls(n.Value, r) {
					r.escaped = true
				}
			}
		}
		return true
	})
	for _, r := range res {
		if r.cleaned || r.escaped {
			continue
		}
		pass.Reportf(r.assign.Pos(),
			"os.%s result %s is neither removed (os.Remove/os.RemoveAll) nor handed off in this function — the temp %s leaks",
			r.creator, r.obj.Name(), tempKind(r.creator))
	}
}

func tempKind(creator string) string {
	if creator == "MkdirTemp" {
		return "directory"
	}
	return "file"
}

// exprString renders simple receiver expressions for diagnostics.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.BasicLit:
		return e.Value
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	case *ast.ParenExpr:
		return "(" + exprString(e.X) + ")"
	default:
		return "operator"
	}
}
