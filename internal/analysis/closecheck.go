package analysis

import (
	"go/ast"
)

// CloseCheck flags calls to an engine.Operator's Open or Close whose error
// result is silently discarded — as a bare statement, a defer, or a go
// statement. Operator compositions propagate child failures through these
// two methods (a Sort that materializes in Open, a scan that flushes in
// Close), so dropping the error hides real execution failures. An explicit
// `_ = op.Close()` is treated as a deliberate, visible discard and allowed.
var CloseCheck = &Analyzer{
	Name: "closecheck",
	Doc:  "flag dropped errors from Operator Open/Close calls",
	Run:  runCloseCheck,
}

func runCloseCheck(pass *Pass) error {
	iface := operatorInterface(pass.Pkg)
	if iface == nil {
		return nil
	}
	check := func(e ast.Expr, how string) {
		call, ok := e.(*ast.CallExpr)
		if !ok {
			return
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Open" && sel.Sel.Name != "Close") {
			return
		}
		tv, ok := pass.TypesInfo.Types[sel.X]
		if !ok || !implementsOperator(tv.Type, iface) {
			return
		}
		pass.Reportf(call.Pos(),
			"error from %s%s.%s() dropped; Open/Close propagate child operator failures — handle it or discard explicitly with _ =",
			how, exprString(sel.X), sel.Sel.Name)
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				check(n.X, "")
			case *ast.DeferStmt:
				check(n.Call, "deferred ")
			case *ast.GoStmt:
				check(n.Call, "go ")
			}
			return true
		})
	}
	return nil
}

// exprString renders simple receiver expressions for diagnostics.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	case *ast.ParenExpr:
		return "(" + exprString(e.X) + ")"
	default:
		return "operator"
	}
}
