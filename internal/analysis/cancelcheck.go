package analysis

import (
	"go/ast"
	"go/types"

	"smarticeberg/internal/analysis/cfg"
)

// CancelCheck flags loops inside Operator/BatchOperator implementations that
// drive a child (call Next/NextBatch on an operator) or invoke a typed
// selection kernel (expr.SelKernel — each invocation burns through a whole
// input window, so a kernel loop covers unbounded rows; the morsel workers of
// ParallelBatchScan run exactly such loops), a zone-map predicate
// (expr.ZonePred — a probe loop sweeps every block summary of a table), or a
// transferred-filter Bloom probe (expr.KeyFilter.MayContain — one probe per
// candidate row) without reaching a cancellation check on every iteration
// path. The runtime contract (PR 5) is that
// execution responds to context cancellation and memory-budget exhaustion
// within a bounded number of rows; a drive loop with a continue-path that
// skips its execState.step()/stepChunk() call can spin past a cancelled
// deadline for as long as the child keeps yielding.
//
// Recognized checks, any of which satisfies an iteration path:
//
//   - execState.step() / execState.stepChunk() (the engine's amortized tick),
//     matched by method name since execState is unexported;
//   - ExecContext.Err() or context.Context.Err();
//   - context.Context.Done() (select-based cancellation).
//
// Only methods on types implementing engine.Operator or engine.BatchOperator
// (and function literals inside them) are analyzed — driver loops in tests
// and tools may legitimately run unchecked.
var CancelCheck = &Analyzer{
	Name: "cancelcheck",
	Doc:  "flag operator loops that drive Next/NextBatch or a selection kernel without a cancellation check on every iteration path",
	Run:  runCancelCheck,
}

func runCancelCheck(pass *Pass) error {
	opIface := operatorInterface(pass.Pkg)
	batchIface := batchOperatorInterface(pass.Pkg)
	if opIface == nil && batchIface == nil {
		return nil
	}
	isOperator := func(t types.Type) bool {
		return implementsOperator(t, opIface) || implementsOperator(t, batchIface)
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil || len(fd.Recv.List) == 0 {
				continue
			}
			recv := pass.TypesInfo.TypeOf(fd.Recv.List[0].Type)
			if recv == nil {
				continue
			}
			if p, ok := types.Unalias(recv).(*types.Pointer); ok {
				recv = p.Elem()
			}
			if !isOperator(recv) {
				continue
			}
			checkCancelBody(pass, fd.Body, isOperator)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					checkCancelBody(pass, fl.Body, isOperator)
				}
				return true
			})
		}
	}
	return nil
}

// isDriveCall reports whether call pulls from an operator — a no-arg Next or
// NextBatch on a receiver that implements Operator/BatchOperator — or invokes
// an expr.SelKernel, which processes a whole input window per call, or an
// expr.ZonePred, whose probe loops sweep every block summary of a table, or
// expr.KeyFilter.MayContain, whose probe loops cover unbounded candidate
// rows. (A spill.Reader.Next or iterator Next on a non-operator type does
// not count — those loops are bounded by what was previously written.)
func isDriveCall(pass *Pass, call *ast.CallExpr, isOperator func(types.Type) bool) bool {
	if t := pass.TypesInfo.TypeOf(call.Fun); t != nil && (isSelKernel(t) || isZonePred(t)) {
		return true
	}
	name := selName(call)
	if name == "MayContain" && len(call.Args) == 1 {
		t := receiverType(pass, call)
		return t != nil && isKeyFilterPtr(t)
	}
	if (name != "Next" && name != "NextBatch") || len(call.Args) != 0 {
		return false
	}
	t := receiverType(pass, call)
	return t != nil && isOperator(t)
}

// isCancelCheckCall reports whether call is one of the recognized
// cancellation checks.
func isCancelCheckCall(pass *Pass, call *ast.CallExpr) bool {
	name := selName(call)
	switch name {
	case "step", "stepChunk":
		return len(call.Args) == 0
	case "Err":
		if len(call.Args) != 0 {
			return false
		}
		t := receiverType(pass, call)
		return t != nil && (isExecContextPtr(t) || isContextContext(t))
	case "Done":
		if len(call.Args) != 0 {
			return false
		}
		t := receiverType(pass, call)
		return t != nil && isContextContext(t)
	}
	return false
}

// describeDrive renders the drive call for the diagnostic: "c.Next",
// "child.NextBatch", "selection kernel s.kern", "zone predicate s.zonePred",
// or "Bloom probe f.MayContain".
func describeDrive(pass *Pass, call *ast.CallExpr) string {
	if t := pass.TypesInfo.TypeOf(call.Fun); t != nil {
		if isSelKernel(t) {
			return "selection kernel " + exprString(call.Fun)
		}
		if isZonePred(t) {
			return "zone predicate " + exprString(call.Fun)
		}
	}
	if selName(call) == "MayContain" {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			return "Bloom probe " + exprString(sel.X) + ".MayContain"
		}
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		return exprString(sel.X) + "." + sel.Sel.Name
	}
	return exprString(call.Fun)
}

func checkCancelBody(pass *Pass, body *ast.BlockStmt, isOperator func(types.Type) bool) {
	g := cfg.New(body)
	for _, l := range g.Loops {
		inLoop := g.Body(l)

		// A drive call belongs to its innermost loop: blocks of loops nested
		// inside l are excluded, so an outer loop is not blamed for a drive
		// that a (separately analyzed) inner loop performs and checks.
		for _, nested := range g.Loops {
			if nested == l || !inLoop[nested.Header] {
				continue
			}
			for b := range g.Body(nested) {
				delete(inLoop, b)
			}
		}

		drives := false
		var driveCall *ast.CallExpr
		for b := range inLoop {
			for _, n := range b.Nodes {
				walkShallow(n, func(x ast.Node) bool {
					if call, ok := x.(*ast.CallExpr); ok && isDriveCall(pass, call, isOperator) {
						drives = true
						if driveCall == nil || call.Pos() < driveCall.Pos() {
							driveCall = call
						}
					}
					return true
				})
			}
		}
		if !drives {
			continue
		}

		// Must-solve "a check has run this iteration", reset at the loop
		// header. Every reachable back edge has to carry the fact.
		flow := &cfg.Flow{
			Meet: cfg.Must,
			Node: func(n ast.Node, in cfg.Facts) cfg.Facts {
				out := in
				walkShallow(n, func(x ast.Node) bool {
					if _, ok := x.(*ast.DeferStmt); ok {
						return false
					}
					if call, ok := x.(*ast.CallExpr); ok && isCancelCheckCall(pass, call) {
						out = out.With(0)
					}
					return true
				})
				return out
			},
			Enter: func(b *cfg.Block, in cfg.Facts) cfg.Facts {
				if b == l.Header {
					return 0
				}
				return in
			},
		}
		r := flow.Solve(g)
		unchecked := false
		for _, latch := range l.Latches {
			if r.Reachable(latch) && !r.Out(latch).Has(0) {
				unchecked = true
			}
		}
		if unchecked {
			pass.Reportf(l.Stmt.Pos(),
				"loop drives %s without a cancellation check on every iteration path — call step()/stepChunk() or check ExecContext.Err/ctx.Err before looping",
				describeDrive(pass, driveCall))
		}
	}
}
