package cfg

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// buildFn parses src as the body of a function and returns its graph. src is
// the function's statements, with markN() calls acting as dataflow probes.
func buildFn(t *testing.T, src string) *Graph {
	t.Helper()
	file := "package p\nfunc f() {\n" + src + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fn.go", file, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := f.Decls[0].(*ast.FuncDecl)
	return New(fd.Body)
}

// markFlow gens fact i at every call to the function named marks[i].
func markFlow(meet Meet, marks ...string) *Flow {
	idx := map[string]int{}
	for i, m := range marks {
		idx[m] = i
	}
	return &Flow{
		Meet: meet,
		Node: func(n ast.Node, in Facts) Facts {
			out := in
			ast.Inspect(n, func(x ast.Node) bool {
				if _, ok := x.(*ast.FuncLit); ok {
					return false
				}
				if call, ok := x.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok {
						if i, ok := idx[id.Name]; ok {
							out = out.With(i)
						}
					}
				}
				return true
			})
			return out
		},
	}
}

// exitFacts solves the flow and returns the meet of facts over the exit
// block's reachable predecessors — i.e. the facts "at function exit".
func exitFacts(g *Graph, f *Flow) Facts {
	r := f.Solve(g)
	first := true
	var acc Facts
	for _, p := range g.Exit.Preds {
		if !r.Reachable(p) {
			continue
		}
		out := r.Out(p)
		if f.Edge != nil {
			out = f.Edge(p, g.Exit, out)
		}
		if first {
			acc, first = out, false
		} else if f.Meet == Must {
			acc &= out
		} else {
			acc |= out
		}
	}
	return acc
}

func describe(f Facts, marks []string) string {
	var got []string
	for i, m := range marks {
		if f.Has(i) {
			got = append(got, m)
		}
	}
	return strings.Join(got, ",")
}

func TestIfElseMustMay(t *testing.T) {
	g := buildFn(t, `
		if cond() {
			m1()
		} else {
			m2()
		}
		m3()
	`)
	marks := []string{"m1", "m2", "m3"}
	must := exitFacts(g, markFlow(Must, marks...))
	if must.Has(0) || must.Has(1) || !must.Has(2) {
		t.Errorf("must at exit = %q, want only m3", describe(must, marks))
	}
	may := exitFacts(g, markFlow(May, marks...))
	for i := range marks {
		if !may.Has(i) {
			t.Errorf("may at exit missing %s", marks[i])
		}
	}
}

func TestLoopBypassesBody(t *testing.T) {
	// A for loop's body may run zero times, so nothing inside it is a
	// "must" fact after the loop — including a defer registered there.
	g := buildFn(t, `
		for i := 0; i < n; i++ {
			defer m1()
		}
		m2()
	`)
	if len(g.Loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(g.Loops))
	}
	deferFlow := &Flow{
		Meet: Must,
		Node: func(n ast.Node, in Facts) Facts {
			if _, ok := n.(*ast.DeferStmt); ok {
				return in.With(0)
			}
			return in
		},
	}
	if f := exitFacts(g, deferFlow); f.Has(0) {
		t.Error("defer-in-loop counted as must at exit; the loop can run zero times")
	}
	if f := exitFacts(g, markFlow(May, "m1")); f.Has(0) {
		// m1 only runs at exit via the deferred call, not on the normal
		// path; the defer statement node itself doesn't "call" m1 here —
		// but the May solve still sees the call expression inside the
		// DeferStmt node, so it IS visible. Assert presence instead.
		_ = f
	}
}

func TestLabeledBreakAndContinue(t *testing.T) {
	g := buildFn(t, `
	Outer:
		for {
			for {
				if a() {
					continue Outer
				}
				if b() {
					break Outer
				}
				m1()
			}
		}
		m2()
	`)
	if len(g.Loops) != 2 {
		t.Fatalf("loops = %d, want 2", len(g.Loops))
	}
	outer, inner := g.Loops[0], g.Loops[1]
	// continue Outer must latch the outer loop, not the inner one.
	if len(outer.Latches) < 2 {
		t.Errorf("outer latches = %d, want >= 2 (body end + continue Outer)", len(outer.Latches))
	}
	r := (&Flow{Meet: May}).Solve(g)
	if !r.Reachable(g.Exit) {
		t.Error("break Outer must make the code after the loops reachable")
	}
	// The inner loop's header must be reachable, and the inner latch must
	// carry the path through m1 (no break/continue).
	if !r.Reachable(inner.Header) {
		t.Error("inner loop header unreachable")
	}
	may := exitFacts(g, markFlow(May, "m1", "m2"))
	if !may.Has(1) {
		t.Error("m2 after break Outer not reachable at exit")
	}
}

func TestSwitchFallthrough(t *testing.T) {
	g := buildFn(t, `
		switch x() {
		case 1:
			m1()
			fallthrough
		case 2:
			m2()
		case 3:
			m3()
		}
		m4()
	`)
	marks := []string{"m1", "m2", "m3", "m4"}
	may := exitFacts(g, markFlow(May, marks...))
	for i := range marks {
		if !may.Has(i) {
			t.Errorf("may at exit missing %s", marks[i])
		}
	}
	// No default clause: the skip edge means nothing but m4 is a must.
	must := exitFacts(g, markFlow(Must, marks...))
	if must.Has(0) || must.Has(1) || must.Has(2) {
		t.Errorf("must at exit = %q, want only m4", describe(must, marks))
	}
	if !must.Has(3) {
		t.Error("must at exit missing m4")
	}

	// With the fallthrough, a path reaches m2 with m1 already set; solve a
	// May flow and check the m1∧m2 combination is possible by asserting
	// the case-2 body sees m1 on some path.
	idx := markFlow(May, marks...)
	r := idx.Solve(g)
	seen := false
	for _, b := range g.Blocks {
		if !r.Reachable(b) {
			continue
		}
		for i, n := range b.Nodes {
			call, ok := nodeCall(n, "m2")
			if !ok {
				continue
			}
			_ = call
			if r.Before(b, i).Has(0) {
				seen = true
			}
		}
	}
	if !seen {
		t.Error("fallthrough edge lost: m2 never sees m1's fact")
	}
}

func nodeCall(n ast.Node, name string) (*ast.CallExpr, bool) {
	var found *ast.CallExpr
	ast.Inspect(n, func(x ast.Node) bool {
		if call, ok := x.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
				found = call
			}
		}
		return found == nil
	})
	return found, found != nil
}

func TestSelect(t *testing.T) {
	g := buildFn(t, `
		select {
		case <-a:
			m1()
		case b <- 1:
			m2()
		}
		m3()
	`)
	marks := []string{"m1", "m2", "m3"}
	may := exitFacts(g, markFlow(May, marks...))
	must := exitFacts(g, markFlow(Must, marks...))
	if !may.Has(0) || !may.Has(1) || !may.Has(2) {
		t.Errorf("may at exit = %q, want all", describe(may, marks))
	}
	if must.Has(0) || must.Has(1) {
		t.Errorf("must at exit = %q, want only m3", describe(must, marks))
	}
	if !must.Has(2) {
		t.Error("must at exit missing m3")
	}
}

func TestBlockingEmptySelect(t *testing.T) {
	g := buildFn(t, `
		select {}
		m1()
	`)
	r := (&Flow{Meet: May}).Solve(g)
	if r.Reachable(g.Exit) {
		t.Error("code after select{} must be unreachable")
	}
}

func TestGotoSkipsStatements(t *testing.T) {
	g := buildFn(t, `
		goto L
		m1()
	L:
		m2()
	`)
	marks := []string{"m1", "m2"}
	may := exitFacts(g, markFlow(May, marks...))
	if may.Has(0) {
		t.Error("m1 after an unconditional goto leaked into exit facts")
	}
	if !may.Has(1) {
		t.Error("goto target m2 not reachable")
	}
}

func TestReturnAndPanicEdges(t *testing.T) {
	g := buildFn(t, `
		if a() {
			m1()
			return
		}
		if b() {
			panic("boom")
		}
		m2()
	`)
	// Exit has three reachable preds: the return block, the panic block,
	// and the natural end. The panic pred's last node must classify as a
	// panic.
	var kinds []string
	r := (&Flow{Meet: May}).Solve(g)
	for _, p := range g.Exit.Preds {
		if !r.Reachable(p) {
			continue
		}
		kind := "end"
		if len(p.Nodes) > 0 {
			last := p.Nodes[len(p.Nodes)-1]
			if _, ok := last.(*ast.ReturnStmt); ok {
				kind = "return"
			} else if IsPanic(last) {
				kind = "panic"
			}
		}
		kinds = append(kinds, kind)
	}
	counts := map[string]int{}
	for _, k := range kinds {
		counts[k]++
	}
	want := map[string]int{"return": 1, "panic": 1, "end": 1}
	if fmt.Sprint(counts) != fmt.Sprint(want) {
		t.Errorf("exit pred kinds = %v, want %v", counts, want)
	}
}

func TestCondEdgeRefinement(t *testing.T) {
	// Edge-sensitive transfer: fact 0 is gen'd at reserve() and killed on
	// the true edge of `reserve() != nil` — modeling "failed, nothing
	// charged". The true branch returns; exit must then be fact-free on
	// that path and fact-carrying on the fallthrough.
	g := buildFn(t, `
		if reserve() != nil {
			return
		}
		m1()
	`)
	flow := markFlow(May, "reserve")
	flow.Edge = func(from, to *Block, out Facts) Facts {
		if from.Cond == nil || to != from.TrueSucc {
			return out
		}
		if bin, ok := from.Cond.(*ast.BinaryExpr); ok && bin.Op == token.NEQ {
			if _, ok := nodeCall(bin.X, "reserve"); ok {
				return out.Without(0)
			}
		}
		return out
	}
	r := flow.Solve(g)
	for _, p := range g.Exit.Preds {
		if !r.Reachable(p) {
			continue
		}
		out := flow.Edge(p, g.Exit, r.Out(p))
		isReturn := len(p.Nodes) > 0 && func() bool {
			_, ok := p.Nodes[len(p.Nodes)-1].(*ast.ReturnStmt)
			return ok
		}()
		if isReturn && out.Has(0) {
			t.Error("failure-path return still carries the reservation fact")
		}
		if !isReturn && !out.Has(0) {
			t.Error("success path lost the reservation fact")
		}
	}
}

func TestLoopHeaderResetViaEnter(t *testing.T) {
	// The cancelcheck shape: fact "checked" is gen'd by tick() and reset at
	// the loop header; every latch must carry the fact or the loop can
	// complete an iteration unchecked.
	check := func(t *testing.T, src string, wantChecked bool) {
		t.Helper()
		g := buildFn(t, src)
		if len(g.Loops) != 1 {
			t.Fatalf("loops = %d, want 1", len(g.Loops))
		}
		l := g.Loops[0]
		flow := markFlow(Must, "tick")
		flow.Enter = func(b *Block, in Facts) Facts {
			if b == l.Header {
				return 0
			}
			return in
		}
		r := flow.Solve(g)
		checked := true
		for _, latch := range l.Latches {
			if !r.Reachable(latch) {
				continue
			}
			if !r.Out(latch).Has(0) {
				checked = false
			}
		}
		if checked != wantChecked {
			t.Errorf("checked = %v, want %v", checked, wantChecked)
		}
	}
	check(t, `
		for {
			tick()
			if work() {
				break
			}
		}
	`, true)
	check(t, `
		for {
			if skip() {
				continue
			}
			tick()
			if work() {
				break
			}
		}
	`, false)
	check(t, `
		for i := 0; i < n; i++ {
			if skip() {
				continue
			}
			tick()
		}
	`, false) // continue jumps to the post block, skipping tick()
}

func TestForPostLatch(t *testing.T) {
	// In a three-clause for, continue jumps to the post block, which is the
	// single latch. A check AFTER the continue is therefore still skippable.
	g := buildFn(t, `
		for i := 0; i < n; i++ {
			if skip() {
				continue
			}
			tick()
		}
	`)
	l := g.Loops[0]
	if len(l.Latches) != 1 {
		t.Fatalf("latches = %d, want 1 (the post block)", len(l.Latches))
	}
	flow := markFlow(Must, "tick")
	flow.Enter = func(b *Block, in Facts) Facts {
		if b == l.Header {
			return 0
		}
		return in
	}
	r := flow.Solve(g)
	if r.Out(l.Latches[0]).Has(0) {
		t.Error("continue path must make tick() a non-must at the latch")
	}
}

func TestSelectOperandsEvaluatedUpFront(t *testing.T) {
	// `case <-poll():` evaluates poll() before any case is chosen, so the
	// fact is a must even on the default path.
	g := buildFn(t, `
		select {
		case <-poll():
			m1()
		default:
			m2()
		}
		m3()
	`)
	must := exitFacts(g, markFlow(Must, "poll", "m1", "m2"))
	if !must.Has(0) {
		t.Error("poll() in a select case operand is not a must fact at exit")
	}
	if must.Has(1) || must.Has(2) {
		t.Error("clause bodies leaked into must facts")
	}
}
