package cfg

import "go/ast"

// Facts is a set of up to MaxFacts dataflow facts, one bit each. What a bit
// means is the client's business: "reservation i is outstanding", "a
// cancellation check has run this iteration", "IO here is failpoint-guarded".
type Facts uint64

// MaxFacts is the solver's fact capacity per problem. Clients with more
// gen sites than this (unheard of in practice — facts are per-function)
// must truncate and accept under-reporting.
const MaxFacts = 64

// Has reports whether fact i is in the set.
func (f Facts) Has(i int) bool { return f&(1<<uint(i)) != 0 }

// With returns the set plus fact i.
func (f Facts) With(i int) Facts { return f | 1<<uint(i) }

// Without returns the set minus fact i.
func (f Facts) Without(i int) Facts { return f &^ (1 << uint(i)) }

// Meet selects the lattice join for merging facts at control-flow merges.
type Meet int

const (
	// May keeps a fact if it holds on at least one incoming path (union) —
	// "the reservation may still be outstanding here".
	May Meet = iota
	// Must keeps a fact only if it holds on every incoming path
	// (intersection) — "a check has definitely run by here".
	Must
)

// Flow is one forward dataflow problem. Node is the per-node transfer
// function; Edge optionally refines facts along a specific edge (e.g. "on
// the branch where this call returned non-nil, the reservation never
// happened"); Enter optionally adjusts facts at block entry after the meet
// (e.g. resetting the per-iteration "checked" fact at a loop header).
type Flow struct {
	Meet  Meet
	Entry Facts
	Node  func(n ast.Node, in Facts) Facts
	Edge  func(from, to *Block, out Facts) Facts
	Enter func(b *Block, in Facts) Facts
}

// Result holds the fixpoint of one Solve call.
type Result struct {
	flow *Flow
	in   map[*Block]Facts
	seen map[*Block]bool
}

// Solve propagates facts forward from g.Entry to a fixpoint. Transfer
// functions must be monotone (gen/kill style always is); the bit-set lattice
// then guarantees termination. Blocks unreachable from Entry are never
// visited — their facts are undefined and Reachable reports false.
func (f *Flow) Solve(g *Graph) *Result {
	r := &Result{flow: f, in: map[*Block]Facts{}, seen: map[*Block]bool{}}
	r.in[g.Entry] = f.Entry
	r.seen[g.Entry] = true
	work := []*Block{g.Entry}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		out := r.Out(b)
		for _, s := range b.Succs {
			e := out
			if f.Edge != nil {
				e = f.Edge(b, s, e)
			}
			if !r.seen[s] {
				r.seen[s] = true
				r.in[s] = e
				work = append(work, s)
				continue
			}
			var merged Facts
			if f.Meet == Must {
				merged = r.in[s] & e
			} else {
				merged = r.in[s] | e
			}
			if merged != r.in[s] {
				r.in[s] = merged
				work = append(work, s)
			}
		}
	}
	return r
}

// Reachable reports whether b is reachable from the graph's entry.
func (r *Result) Reachable(b *Block) bool { return r.seen[b] }

// In returns the facts at block entry, before Enter runs. Meaningless for
// unreachable blocks.
func (r *Result) In(b *Block) Facts { return r.in[b] }

// Out replays b's transfer to produce the facts at block exit, before any
// edge refinement.
func (r *Result) Out(b *Block) Facts { return r.at(b, len(b.Nodes)) }

// Before returns the facts immediately before b.Nodes[i].
func (r *Result) Before(b *Block, i int) Facts { return r.at(b, i) }

func (r *Result) at(b *Block, upto int) Facts {
	f := r.in[b]
	if r.flow.Enter != nil {
		f = r.flow.Enter(b, f)
	}
	if r.flow.Node != nil {
		for i := 0; i < upto; i++ {
			f = r.flow.Node(b.Nodes[i], f)
		}
	}
	return f
}
