// Package cfg builds intraprocedural control-flow graphs over go/ast
// function bodies and solves forward dataflow problems on them. It is the
// engine behind the flow-sensitive icelint passes (budgetbalance,
// cancelcheck, failcover): those passes need to reason about *paths* —
// "is this reservation released on every return?", "does every loop
// iteration reach a cancellation check?" — which the purely syntactic
// passes cannot.
//
// The graph is deliberately simple: a Block is a run of statements (and
// branch-condition expressions) with no internal control flow; edges follow
// Go's structured control statements plus goto. Three conventions matter to
// clients:
//
//   - Every function exit — return statements, explicit panic(...) calls,
//     calls to os.Exit/runtime.Goexit/log.Fatal*, and falling off the end of
//     the body — has an edge to the single Exit block. Deferred calls run on
//     all of these paths, which is why defer statements appear as ordinary
//     nodes: a dataflow fact gen'd at a DeferStmt holds at every exit the
//     registration dominates.
//   - A block that ends by testing a condition records the tested expression
//     (Cond) and which successor is the true/false outcome, so transfer
//     functions can be edge-sensitive ("on this edge the Reserve call is
//     known to have failed").
//   - Function literals are opaque: the builder never descends into a
//     FuncLit's body. Each function body — declared or literal — gets its
//     own graph.
package cfg

import (
	"go/ast"
	"go/token"
)

// Block is one straight-line run of AST nodes. Nodes holds statements in
// execution order; branch conditions and range expressions appear as bare
// ast.Expr nodes so transfer functions see them exactly once, where they are
// evaluated.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block

	// Cond is set when the block ends by branching on a boolean expression;
	// TrueSucc and FalseSucc name the outcome edges (both also appear in
	// Succs). Range headers and select/switch dispatch blocks have multiple
	// successors but no Cond.
	Cond      ast.Expr
	TrueSucc  *Block
	FalseSucc *Block
}

// Loop records one for/range statement: where each iteration (re)starts and
// which blocks jump back there.
type Loop struct {
	// Stmt is the *ast.ForStmt or *ast.RangeStmt.
	Stmt ast.Stmt
	// Header is the block every iteration passes through: the condition
	// block of a for, the next-element block of a range.
	Header *Block
	// Latches are the sources of back edges into Header (the post block of
	// a three-clause for; body-end and continue blocks otherwise). A latch
	// may be unreachable when the body unconditionally returns.
	Latches []*Block
}

// Graph is the control-flow graph of one function body.
type Graph struct {
	Entry  *Block
	Exit   *Block // all returns, panics, and the natural end converge here
	Blocks []*Block
	Loops  []*Loop
}

// Body returns the blocks of l's natural loop: Header plus every block that
// reaches a latch without passing through Header.
func (g *Graph) Body(l *Loop) map[*Block]bool {
	in := map[*Block]bool{l.Header: true}
	var stack []*Block
	for _, latch := range l.Latches {
		if !in[latch] {
			in[latch] = true
			stack = append(stack, latch)
		}
	}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range b.Preds {
			if !in[p] {
				in[p] = true
				stack = append(stack, p)
			}
		}
	}
	return in
}

// New builds the graph for one function body (a FuncDecl's or FuncLit's
// Body). A nil body yields a trivial entry→exit graph.
func New(body *ast.BlockStmt) *Graph {
	b := &builder{
		g:      &Graph{},
		labels: map[string]*Block{},
	}
	b.g.Entry = b.newBlock()
	b.g.Exit = b.newBlock()
	b.cur = b.g.Entry
	if body != nil {
		for _, s := range body.List {
			b.stmt(s)
		}
	}
	b.edge(b.cur, b.g.Exit)
	for _, pg := range b.gotos {
		if lb := b.labels[pg.name]; lb != nil {
			b.edge(pg.from, lb)
		}
	}
	return b.g
}

type target struct {
	label      string
	breakTo    *Block
	continueTo *Block // nil for switch/select targets
	loop       *Loop  // set when continueTo jumps straight to the header
}

type pendingGoto struct {
	from *Block
	name string
}

type builder struct {
	g       *Graph
	cur     *Block
	targets []*target
	labels  map[string]*Block
	gotos   []pendingGoto
	label   string // pending label for the next breakable statement
	fallTo  *Block // fallthrough target inside the current switch clause
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// backEdge wires a jump to a loop header, recording from as a latch.
func (b *builder) backEdge(from *Block, l *Loop) {
	b.edge(from, l.Header)
	l.Latches = append(l.Latches, from)
}

func (b *builder) add(n ast.Node) {
	if n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

// takeLabel consumes the pending label for a breakable statement.
func (b *builder) takeLabel() string {
	l := b.label
	b.label = ""
	return l
}

// terminate ends the current block with an edge to dest (Exit for returns
// and panics) and starts a fresh, initially unreachable block for whatever
// dead code follows.
func (b *builder) terminate(dest *Block) {
	b.edge(b.cur, dest)
	b.cur = b.newBlock()
}

// isTerminalCall recognizes statements that never return control:
// panic(...), os.Exit, runtime.Goexit, and log.Fatal*. The selector matching
// is name-based — the builder is pure AST — which is the right tradeoff for
// a lint CFG: a false "terminal" merely prunes an edge from dead-looking
// code.
func isTerminalCall(s *ast.ExprStmt) bool {
	call, ok := s.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		switch fun.Sel.Name {
		case "Goexit", "Exit", "Fatal", "Fatalf", "Fatalln":
			if pkg, ok := fun.X.(*ast.Ident); ok {
				return pkg.Name == "os" || pkg.Name == "runtime" || pkg.Name == "log"
			}
		}
	}
	return false
}

// IsPanic reports whether n is an explicit panic(...) statement — the
// exit-classification hook diagnostics use to say "leaks on the panic path".
func IsPanic(n ast.Node) bool {
	s, ok := n.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := s.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, inner := range s.List {
			b.stmt(inner)
		}

	case *ast.ExprStmt:
		b.add(s)
		if isTerminalCall(s) {
			b.terminate(b.g.Exit)
		}

	case *ast.ReturnStmt:
		b.add(s)
		b.terminate(b.g.Exit)

	case *ast.LabeledStmt:
		lb := b.newBlock()
		b.edge(b.cur, lb)
		b.cur = lb
		b.labels[s.Label.Name] = lb
		b.label = s.Label.Name
		b.stmt(s.Stmt)
		b.label = ""

	case *ast.BranchStmt:
		b.branch(s)

	case *ast.IfStmt:
		b.ifStmt(s)

	case *ast.ForStmt:
		b.forStmt(s)

	case *ast.RangeStmt:
		b.rangeStmt(s)

	case *ast.SwitchStmt:
		b.switchStmt(s.Init, s.Tag, nil, s.Body, s)

	case *ast.TypeSwitchStmt:
		b.switchStmt(s.Init, nil, s.Assign, s.Body, s)

	case *ast.SelectStmt:
		b.selectStmt(s)

	case nil, *ast.EmptyStmt:
		// nothing

	default:
		// DeclStmt, AssignStmt, IncDecStmt, SendStmt, GoStmt, DeferStmt,
		// BadStmt: straight-line nodes. Defer in particular must be an
		// ordinary node so "a deferred release registered here" is a fact
		// that flows to every exit this statement dominates.
		b.add(s)
	}
}

func (b *builder) branch(s *ast.BranchStmt) {
	b.add(s)
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		for i := len(b.targets) - 1; i >= 0; i-- {
			t := b.targets[i]
			if label == "" || t.label == label {
				b.terminate(t.breakTo)
				return
			}
		}
	case token.CONTINUE:
		for i := len(b.targets) - 1; i >= 0; i-- {
			t := b.targets[i]
			if t.continueTo == nil {
				continue
			}
			if label == "" || t.label == label {
				if t.loop != nil && t.continueTo == t.loop.Header {
					b.backEdge(b.cur, t.loop)
					b.cur = b.newBlock()
				} else {
					b.terminate(t.continueTo)
				}
				return
			}
		}
	case token.GOTO:
		b.gotos = append(b.gotos, pendingGoto{from: b.cur, name: label})
		b.cur = b.newBlock()
		return
	case token.FALLTHROUGH:
		if b.fallTo != nil {
			b.terminate(b.fallTo)
			return
		}
	}
	// Malformed branch (no matching target): treat as opaque.
	b.cur = b.newBlock()
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Cond)
	cond := b.cur
	cond.Cond = s.Cond

	then := b.newBlock()
	b.edge(cond, then)
	cond.TrueSucc = then

	join := b.newBlock()
	var els *Block
	if s.Else != nil {
		els = b.newBlock()
		b.edge(cond, els)
		cond.FalseSucc = els
	} else {
		b.edge(cond, join)
		cond.FalseSucc = join
	}

	b.cur = then
	b.stmt(s.Body)
	b.edge(b.cur, join)

	if s.Else != nil {
		b.cur = els
		b.stmt(s.Else)
		b.edge(b.cur, join)
	}
	b.cur = join
}

func (b *builder) forStmt(s *ast.ForStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.add(s.Init)
	}

	header := b.newBlock()
	b.edge(b.cur, header)
	loop := &Loop{Stmt: s, Header: header}
	b.g.Loops = append(b.g.Loops, loop)

	body := b.newBlock()
	after := b.newBlock()
	b.cur = header
	if s.Cond != nil {
		b.add(s.Cond)
		header.Cond = s.Cond
		b.edge(header, body)
		b.edge(header, after)
		header.TrueSucc = body
		header.FalseSucc = after
	} else {
		b.edge(header, body)
	}

	cont := header
	var post *Block
	if s.Post != nil {
		post = b.newBlock()
		cont = post
	}
	b.targets = append(b.targets, &target{label: label, breakTo: after, continueTo: cont, loop: loop})

	b.cur = body
	b.stmt(s.Body)
	if post != nil {
		b.edge(b.cur, post)
		b.cur = post
		b.add(s.Post)
		b.backEdge(post, loop)
	} else {
		b.backEdge(b.cur, loop)
	}

	b.targets = b.targets[:len(b.targets)-1]
	b.cur = after
}

func (b *builder) rangeStmt(s *ast.RangeStmt) {
	label := b.takeLabel()
	// The ranged-over expression is evaluated once, before the loop.
	b.add(s.X)

	header := b.newBlock()
	b.edge(b.cur, header)
	// The RangeStmt itself is the header's node: the per-iteration
	// key/value assignment happens here.
	header.Nodes = append(header.Nodes, s)
	loop := &Loop{Stmt: s, Header: header}
	b.g.Loops = append(b.g.Loops, loop)

	body := b.newBlock()
	after := b.newBlock()
	b.edge(header, body)
	b.edge(header, after)

	b.targets = append(b.targets, &target{label: label, breakTo: after, continueTo: header, loop: loop})
	b.cur = body
	b.stmt(s.Body)
	b.backEdge(b.cur, loop)
	b.targets = b.targets[:len(b.targets)-1]
	b.cur = after
}

// switchStmt handles both expression switches (tag set, assign nil) and type
// switches (assign set, tag nil).
func (b *builder) switchStmt(init ast.Stmt, tag ast.Expr, assign ast.Stmt, body *ast.BlockStmt, stmt ast.Stmt) {
	label := b.takeLabel()
	if init != nil {
		b.add(init)
	}
	if tag != nil {
		b.add(tag)
	}
	if assign != nil {
		b.add(assign)
	}
	head := b.cur
	after := b.newBlock()
	b.targets = append(b.targets, &target{label: label, breakTo: after})

	// Create every clause's body block up front so fallthrough can jump to
	// the next clause directly (it bypasses that clause's case expressions,
	// matching Go semantics closely enough for dataflow).
	var clauses []*ast.CaseClause
	var bodies []*Block
	hasDefault := false
	for _, raw := range body.List {
		cc := raw.(*ast.CaseClause)
		clauses = append(clauses, cc)
		bodies = append(bodies, b.newBlock())
		if cc.List == nil {
			hasDefault = true
		}
	}
	savedFall := b.fallTo
	for i, cc := range clauses {
		b.edge(head, bodies[i])
		b.cur = bodies[i]
		for _, e := range cc.List {
			b.add(e)
		}
		if i+1 < len(bodies) {
			b.fallTo = bodies[i+1]
		} else {
			b.fallTo = nil
		}
		for _, st := range cc.Body {
			b.stmt(st)
		}
		b.edge(b.cur, after)
	}
	b.fallTo = savedFall
	if !hasDefault {
		b.edge(head, after)
	}
	b.targets = b.targets[:len(b.targets)-1]
	b.cur = after
	_ = stmt
}

func (b *builder) selectStmt(s *ast.SelectStmt) {
	label := b.takeLabel()
	// Go evaluates every case's channel operand (and each send's value)
	// up front, before choosing a case — so those expressions belong to the
	// dispatch block, on every path. A `case <-ctx.Done():` poll therefore
	// counts as executed even when default wins.
	for _, raw := range s.Body.List {
		cc := raw.(*ast.CommClause)
		switch comm := cc.Comm.(type) {
		case *ast.ExprStmt:
			if recv, ok := comm.X.(*ast.UnaryExpr); ok && recv.Op == token.ARROW {
				b.add(recv.X)
			}
		case *ast.AssignStmt:
			if len(comm.Rhs) == 1 {
				if recv, ok := comm.Rhs[0].(*ast.UnaryExpr); ok && recv.Op == token.ARROW {
					b.add(recv.X)
				}
			}
		case *ast.SendStmt:
			b.add(comm.Chan)
			b.add(comm.Value)
		}
	}
	head := b.cur
	after := b.newBlock()
	b.targets = append(b.targets, &target{label: label, breakTo: after})
	for _, raw := range s.Body.List {
		cc := raw.(*ast.CommClause)
		blk := b.newBlock()
		b.edge(head, blk)
		b.cur = blk
		if cc.Comm != nil {
			b.stmt(cc.Comm)
		}
		for _, st := range cc.Body {
			b.stmt(st)
		}
		b.edge(b.cur, after)
	}
	// No default clause: the select blocks until some case is ready, so
	// there is deliberately no head→after edge. select{} therefore makes
	// everything after it unreachable, which is exact.
	b.targets = b.targets[:len(b.targets)-1]
	b.cur = after
}
