package analysis

import (
	"go/ast"
	"go/token"
)

// ValueCmp forbids Go-level equality on value.Value. The struct compiles
// under == because all its fields are comparable, but Go equality disagrees
// with the engine's SQL semantics in every interesting case: Int 3 and Float
// 3.0 are the same SQL value yet differ under ==, and NULLs compare equal to
// each other. Grouping and joins must go through value.Compare / value.Equal
// / value.Identical, and map keys through the value.Key / value.AppendKey
// encoding (which is exactly the Identical relation).
var ValueCmp = &Analyzer{
	Name: "valuecmp",
	Doc:  "forbid ==/!=/switch/map-key use of value.Value; use the value comparators and key encoding",
	Run:  runValueCmp,
}

func runValueCmp(pass *Pass) error {
	typeOf := func(e ast.Expr) bool {
		tv, ok := pass.TypesInfo.Types[e]
		return ok && isValueValue(tv.Type)
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if (n.Op == token.EQL || n.Op == token.NEQ) && (typeOf(n.X) || typeOf(n.Y)) {
					pass.Reportf(n.OpPos,
						"value.Value compared with %s; Go equality breaks SQL semantics (Int 3 != Float 3.0, NULL == NULL) — use value.Equal, value.Identical, or value.Compare",
						n.Op)
				}
			case *ast.SwitchStmt:
				if n.Tag != nil && typeOf(n.Tag) {
					pass.Reportf(n.Tag.Pos(),
						"switch on a value.Value uses Go equality per case; compare with value.Identical or switch on the Kind instead")
				}
			case *ast.MapType:
				if typeOf(n.Key) {
					pass.Reportf(n.Key.Pos(),
						"map keyed by value.Value groups with Go equality; encode keys with value.Key or value.AppendKey instead")
				}
			}
			return true
		})
	}
	return nil
}
