package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ValueCmp forbids Go-level equality on value.Value. The struct compiles
// under == because all its fields are comparable, but Go equality disagrees
// with the engine's SQL semantics in every interesting case: Int 3 and Float
// 3.0 are the same SQL value yet differ under ==, and NULLs compare equal to
// each other. Grouping and joins must go through value.Compare / value.Equal
// / value.Identical, and map keys through the value.Key / value.AppendKey
// encoding (which is exactly the Identical relation).
var ValueCmp = &Analyzer{
	Name: "valuecmp",
	Doc:  "forbid ==/!=/switch/map-key/sync.Map-key use of value.Value; use the value comparators and key encoding",
	Run:  runValueCmp,
}

// syncMapKeyMethods are the sync.Map methods whose first argument is the
// key. sync.Map hashes keys with Go equality just like a built-in map, so a
// value.Value key has the same semantic bug the MapType check catches — but
// hidden behind an `any` parameter the compiler never questions.
var syncMapKeyMethods = map[string]bool{
	"Store": true, "Load": true, "LoadOrStore": true, "LoadAndDelete": true,
	"Delete": true, "Swap": true, "CompareAndSwap": true, "CompareAndDelete": true,
}

func runValueCmp(pass *Pass) error {
	typeOf := func(e ast.Expr) bool {
		tv, ok := pass.TypesInfo.Types[e]
		return ok && isValueValue(tv.Type)
	}
	isSyncMap := func(e ast.Expr) bool {
		tv, ok := pass.TypesInfo.Types[e]
		if !ok || tv.Type == nil {
			return false
		}
		t := tv.Type
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
		}
		return isPkgType(t, "sync", "Map")
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if (n.Op == token.EQL || n.Op == token.NEQ) && (typeOf(n.X) || typeOf(n.Y)) {
					pass.Reportf(n.OpPos,
						"value.Value compared with %s; Go equality breaks SQL semantics (Int 3 != Float 3.0, NULL == NULL) — use value.Equal, value.Identical, or value.Compare",
						n.Op)
				}
			case *ast.SwitchStmt:
				if n.Tag != nil && typeOf(n.Tag) {
					pass.Reportf(n.Tag.Pos(),
						"switch on a value.Value uses Go equality per case; compare with value.Identical or switch on the Kind instead")
				}
			case *ast.MapType:
				if typeOf(n.Key) {
					pass.Reportf(n.Key.Pos(),
						"map keyed by value.Value groups with Go equality; encode keys with value.Key or value.AppendKey instead")
				}
			case *ast.CallExpr:
				sel, ok := n.Fun.(*ast.SelectorExpr)
				if !ok || !syncMapKeyMethods[sel.Sel.Name] || len(n.Args) == 0 {
					return true
				}
				if isSyncMap(sel.X) && typeOf(n.Args[0]) {
					pass.Reportf(n.Args[0].Pos(),
						"sync.Map keyed by value.Value groups with Go equality; encode keys with value.Key or value.AppendKey instead")
				}
			}
			return true
		})
	}
	return nil
}
