package analysis

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// fixtureDeps are the module packages the fixtures import; their dependency
// closure (including the standard library) is type-checked once per test
// binary via the shared loader.
var fixtureDeps = []string{
	"smarticeberg/internal/engine",
	"smarticeberg/internal/value",
	"smarticeberg/internal/resource",
	"smarticeberg/internal/failpoint",
}

var (
	loaderOnce sync.Once
	loader     *Loader
	loaderErr  error
)

func sharedLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		loader = NewLoader()
		_, loaderErr = loader.Load("../..", fixtureDeps)
	})
	if loaderErr != nil {
		t.Fatalf("loading fixture dependencies: %v", loaderErr)
	}
	return loader
}

// wantRe matches golden expectations:  // want `regex`  or  // want "regex"
var wantRe = regexp.MustCompile("//\\s*want\\s+(`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\")")

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

func collectWants(t *testing.T, pkg *Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				raw := m[1]
				var pat string
				if strings.HasPrefix(raw, "`") {
					pat = strings.Trim(raw, "`")
				} else {
					var err error
					pat, err = strconv.Unquote(raw)
					if err != nil {
						t.Fatalf("bad want string %s: %v", raw, err)
					}
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("bad want regexp %q: %v", pat, err)
				}
				pos := pkg.Fset.Position(c.Pos())
				wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return wants
}

func testGolden(t *testing.T, a *Analyzer, fixture string) {
	l := sharedLoader(t)
	dir := filepath.Join("testdata", "src", fixture)
	pkg, err := l.CheckDir("../..", dir, nil) // deps already loaded
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}
	diags, err := RunAnalyzers(pkg, []*Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	wants := collectWants(t, pkg)
	key := func(file string, line int) string { return fmt.Sprintf("%s:%d", filepath.Base(file), line) }
	byLine := map[string][]*expectation{}
	for _, w := range wants {
		byLine[key(w.file, w.line)] = append(byLine[key(w.file, w.line)], w)
	}
	for _, d := range diags {
		matched := false
		for _, w := range byLine[key(d.Pos.Filename, d.Pos.Line)] {
			if w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic:\n  %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", filepath.Base(w.file), w.line, w.re)
		}
	}
}

func TestOpContractGolden(t *testing.T) { testGolden(t, OpContract, "opcontract") }
func TestRowAliasGolden(t *testing.T)   { testGolden(t, RowAlias, "rowalias") }
func TestValueCmpGolden(t *testing.T)   { testGolden(t, ValueCmp, "valuecmp") }
func TestCloseCheckGolden(t *testing.T) { testGolden(t, CloseCheck, "closecheck") }
func TestGoExitGolden(t *testing.T)     { testGolden(t, GoExit, "goexit") }

func TestBudgetBalanceGolden(t *testing.T) { testGolden(t, BudgetBalance, "budgetbalance") }
func TestCancelCheckGolden(t *testing.T)   { testGolden(t, CancelCheck, "cancelcheck") }
func TestFailCoverGolden(t *testing.T)     { testGolden(t, FailCover, "failcover") }

// TestPassPanicContained asserts RunAnalyzers converts a pass panic into a
// diagnostic carrying the pass's name instead of aborting the run — one
// buggy pass must not mask the others' findings.
func TestPassPanicContained(t *testing.T) {
	l := sharedLoader(t)
	pkg, err := l.CheckDir("../..", filepath.Join("testdata", "src", "opcontract"), nil)
	if err != nil {
		t.Fatal(err)
	}
	boom := &Analyzer{
		Name: "boom",
		Doc:  "always panics",
		Run:  func(*Pass) error { panic("kaboom") },
	}
	sentinel := &Analyzer{
		Name: "sentinel",
		Doc:  "proves later passes still run",
		Run: func(p *Pass) error {
			p.Reportf(p.Files[0].Pos(), "sentinel ran")
			return nil
		},
	}
	diags, err := RunAnalyzers(pkg, []*Analyzer{boom, sentinel})
	if err != nil {
		t.Fatalf("RunAnalyzers: %v", err)
	}
	var sawPanic, sawSentinel bool
	for _, d := range diags {
		switch d.Analyzer {
		case "boom":
			sawPanic = strings.Contains(d.Message, "kaboom")
		case "sentinel":
			sawSentinel = true
		}
	}
	if !sawPanic {
		t.Errorf("no panic diagnostic from the boom pass; got %v", diags)
	}
	if !sawSentinel {
		t.Error("sentinel pass did not run after the panicking pass")
	}
}

// TestRepoClean asserts the linter's own verdict on the repository: zero
// violations across every package of the module. This is the same gate
// `make lint` and CI enforce, kept here so plain `go test ./...` catches
// regressions too.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	l := sharedLoader(t)
	pkgs, err := l.LoadTargets("../..", []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkgs {
		if p.Standard || p.Info == nil {
			continue
		}
		diags, err := RunAnalyzers(p, All())
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
}
