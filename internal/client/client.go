// Package client is the Go client for icebergd's JSON HTTP API, with the
// retry discipline the server's fault-recovery contract calls for: transport
// failures and typed overload sheds are retried with jittered exponential
// backoff honoring the server's Retry-After hints, an open circuit breaker
// fast-fails instead of being hammered, and everything stops the moment the
// caller's context does.
//
// The package deliberately does not import internal/server: query options
// travel as an opaque JSON-marshaled value, so the server's load harness can
// itself be a client.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Config shapes one Client. The zero value (plus a BaseURL) is usable.
type Config struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient overrides the transport (default: a client with a 30s
	// timeout). The per-request context still governs each attempt.
	HTTPClient *http.Client
	// MaxRetries bounds client-side retries after a retryable failure
	// (transport error or typed overload shed). 0 means the default of 3;
	// negative disables retries.
	MaxRetries int
	// RetryBase is the first backoff step (default 25ms); RetryMax caps the
	// exponential growth (default 2s). The server's Retry-After hint, when
	// larger, wins over the computed backoff.
	RetryBase time.Duration
	RetryMax  time.Duration
}

func (c Config) withDefaults() Config {
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{Timeout: 30 * time.Second}
	}
	switch {
	case c.MaxRetries == 0:
		c.MaxRetries = 3
	case c.MaxRetries < 0:
		c.MaxRetries = 0
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 25 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 2 * time.Second
	}
	return c
}

// Client talks to one icebergd.
type Client struct {
	cfg Config
}

// New builds a client for the server at cfg.BaseURL.
func New(cfg Config) *Client {
	return &Client{cfg: cfg.withDefaults()}
}

// APIError is a non-200 response, decoded from the server's error body. Code
// and Class carry the server's typed verdict ("overloaded", "breaker_open",
// "draining", ... / "transient", "overload", ...), so callers never parse
// messages.
type APIError struct {
	Status     int
	Code       string
	Class      string
	Message    string
	Attempts   int // server-side execution attempts, when reported
	RetryAfter time.Duration
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("icebergd: %d %s: %s", e.Status, e.Code, e.Message)
}

// retryable reports whether the client should retry this response: only the
// plain overload shed, where the server itself suggested coming back. An
// open breaker means this session is the problem (fast-fail and let the
// cooldown run); draining means the server is going away.
func (e *APIError) retryable() bool {
	return e.Status == http.StatusTooManyRequests && e.Code != "breaker_open"
}

// QueryStats mirrors the server's per-query stats object.
type QueryStats struct {
	Bindings     int64    `json:"bindings"`
	MemoHits     int64    `json:"memo_hits"`
	PruneHits    int64    `json:"prune_hits"`
	InnerEvals   int64    `json:"inner_evals"`
	Degradations []string `json:"degradations,omitempty"`
	Attempts     int      `json:"attempts,omitempty"`
	FinalDegrade string   `json:"final_degrade,omitempty"`
}

// Result is one query's result set.
type Result struct {
	Columns []string    `json:"columns"`
	Rows    [][]any     `json:"rows"`
	Stats   *QueryStats `json:"stats,omitempty"`
}

// QueryRequest is the wire shape of POST /query. Opts is marshaled as-is
// (use the server's QueryOptions or any JSON-compatible value).
type QueryRequest struct {
	SQL     string `json:"sql"`
	Session string `json:"session,omitempty"`
	Opts    any    `json:"opts,omitempty"`
}

// Query runs one SELECT, retrying per the client's policy.
func (c *Client) Query(ctx context.Context, req QueryRequest) (*Result, error) {
	var out Result
	if err := c.do(ctx, "/query", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Exec runs a DDL/DML statement (CREATE TABLE, INSERT).
func (c *Client) Exec(ctx context.Context, sql string) error {
	return c.do(ctx, "/exec", map[string]string{"sql": sql}, nil)
}

// NewSession creates a session with the given default query options and
// returns its ID.
func (c *Client) NewSession(ctx context.Context, opts any) (string, error) {
	var out struct {
		Session string `json:"session"`
	}
	body := map[string]any{}
	if opts != nil {
		body["opts"] = opts
	}
	if err := c.do(ctx, "/session", body, &out); err != nil {
		return "", err
	}
	return out.Session, nil
}

// Stats fetches /stats into out (pass the server's Stats struct or any
// JSON-compatible shape).
func (c *Client) Stats(ctx context.Context, out any) error {
	return c.get(ctx, "/stats", out)
}

// Healthy reports whether /healthz answers 200.
func (c *Client) Healthy(ctx context.Context) bool {
	var out struct {
		Status string `json:"status"`
	}
	return c.get(ctx, "/healthz", &out) == nil
}

// do POSTs body to path with the retry policy, decoding a 200 into out.
func (c *Client) do(ctx context.Context, path string, body, out any) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return err
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		lastErr = c.once(ctx, path, payload, out)
		if lastErr == nil {
			return nil
		}
		if attempt >= c.cfg.MaxRetries || ctx.Err() != nil {
			return lastErr
		}
		hint := time.Duration(0)
		if ae, ok := lastErr.(*APIError); ok {
			if !ae.retryable() {
				return lastErr
			}
			hint = ae.RetryAfter
		}
		wait := c.backoff(attempt)
		if hint > wait {
			wait = hint
		}
		if deadline, ok := ctx.Deadline(); ok && time.Until(deadline) < wait {
			return lastErr
		}
		t := time.NewTimer(wait)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return lastErr
		}
	}
}

// once issues a single POST attempt.
func (c *Client) once(ctx context.Context, path string, payload []byte, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.cfg.BaseURL+path, bytes.NewReader(payload))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	if out == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// get issues one GET (no retries: reads are cheap and callers poll anyway).
func (c *Client) get(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.cfg.BaseURL+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// decodeError turns a non-200 response into an *APIError, preferring the
// body's retry_after_ms over the coarser Retry-After header.
func decodeError(resp *http.Response) error {
	ae := &APIError{Status: resp.StatusCode, Code: "http_" + strconv.Itoa(resp.StatusCode)}
	var body struct {
		Error        string `json:"error"`
		Code         string `json:"code"`
		Class        string `json:"class"`
		Attempts     int    `json:"attempts"`
		RetryAfterMS int64  `json:"retry_after_ms"`
	}
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if err := json.Unmarshal(raw, &body); err == nil && body.Error != "" {
		ae.Message = body.Error
		if body.Code != "" {
			ae.Code = body.Code
		}
		ae.Class = body.Class
		ae.Attempts = body.Attempts
		ae.RetryAfter = time.Duration(body.RetryAfterMS) * time.Millisecond
	} else {
		ae.Message = strings.TrimSpace(string(raw))
	}
	if ae.RetryAfter == 0 {
		if s := resp.Header.Get("Retry-After"); s != "" {
			if secs, err := strconv.Atoi(s); err == nil {
				ae.RetryAfter = time.Duration(secs) * time.Second
			}
		}
	}
	return ae
}

// backoff is the jittered exponential wait before retry n (0-based):
// RetryBase doubling per attempt with ±50% jitter, capped at RetryMax.
func (c *Client) backoff(attempt int) time.Duration {
	base := c.cfg.RetryBase << uint(attempt)
	if base > c.cfg.RetryMax || base <= 0 {
		base = c.cfg.RetryMax
	}
	half := int64(base) / 2
	return time.Duration(half + rand.Int63n(half+1) + rand.Int63n(half+1))
}
