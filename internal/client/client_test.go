package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// stub builds a test server whose /query handler is driven per-call.
func stub(t *testing.T, handler http.HandlerFunc) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", handler)
	s := httptest.NewServer(mux)
	t.Cleanup(s.Close)
	return s
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func TestQueryRetriesOverload(t *testing.T) {
	var calls atomic.Int32
	srv := stub(t, func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			writeJSON(w, http.StatusTooManyRequests, map[string]any{
				"error": "server overloaded", "code": "overloaded",
				"class": "overload", "retry_after_ms": 1})
			return
		}
		writeJSON(w, http.StatusOK, Result{Columns: []string{"n"}, Rows: [][]any{{1.0}},
			Stats: &QueryStats{Attempts: 1}})
	})
	c := New(Config{BaseURL: srv.URL, RetryBase: time.Millisecond})
	res, err := c.Query(context.Background(), QueryRequest{SQL: "SELECT 1"})
	if err != nil {
		t.Fatalf("retries did not absorb the shed: %v", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("made %d calls, want 3", calls.Load())
	}
	if len(res.Rows) != 1 || res.Stats == nil || res.Stats.Attempts != 1 {
		t.Fatalf("result = %+v", res)
	}
}

func TestQueryFastFailsOnOpenBreaker(t *testing.T) {
	var calls atomic.Int32
	srv := stub(t, func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeJSON(w, http.StatusTooManyRequests, map[string]any{
			"error": "circuit breaker open", "code": "breaker_open",
			"class": "overload", "retry_after_ms": 500})
	})
	c := New(Config{BaseURL: srv.URL, RetryBase: time.Millisecond})
	_, err := c.Query(context.Background(), QueryRequest{SQL: "SELECT 1"})
	var ae *APIError
	if !errors.As(err, &ae) || ae.Code != "breaker_open" {
		t.Fatalf("got %v, want breaker_open APIError", err)
	}
	if ae.RetryAfter != 500*time.Millisecond {
		t.Fatalf("RetryAfter = %s, want 500ms", ae.RetryAfter)
	}
	if calls.Load() != 1 {
		t.Fatalf("open breaker was hammered %d times, want 1", calls.Load())
	}
}

func TestQueryDoesNotRetryFatal(t *testing.T) {
	var calls atomic.Int32
	srv := stub(t, func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeJSON(w, http.StatusInternalServerError, map[string]any{
			"error": "no such table", "code": "internal", "class": "fatal", "attempts": 1})
	})
	c := New(Config{BaseURL: srv.URL, RetryBase: time.Millisecond})
	_, err := c.Query(context.Background(), QueryRequest{SQL: "SELECT 1"})
	var ae *APIError
	if !errors.As(err, &ae) || ae.Class != "fatal" || ae.Attempts != 1 {
		t.Fatalf("got %v, want fatal APIError with attempts", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("fatal error retried: %d calls", calls.Load())
	}
}

func TestQueryHonorsContext(t *testing.T) {
	srv := stub(t, func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusTooManyRequests, map[string]any{
			"error": "server overloaded", "code": "overloaded", "retry_after_ms": 60000})
	})
	c := New(Config{BaseURL: srv.URL})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Query(ctx, QueryRequest{SQL: "SELECT 1"})
	if err == nil {
		t.Fatal("expected an error")
	}
	// The 60s Retry-After must not be slept against a 50ms deadline.
	if waited := time.Since(start); waited > time.Second {
		t.Fatalf("client slept %s past its context", waited)
	}
}

func TestTransportErrorRetried(t *testing.T) {
	// A server that closes immediately: first Do fails at the transport
	// layer; the retry goes to a healthy one.
	dead := httptest.NewServer(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {}))
	dead.Close()
	c := New(Config{BaseURL: dead.URL, MaxRetries: 1, RetryBase: time.Millisecond})
	_, err := c.Query(context.Background(), QueryRequest{SQL: "SELECT 1"})
	if err == nil {
		t.Fatal("dead server answered")
	}
	var ae *APIError
	if errors.As(err, &ae) {
		t.Fatalf("transport failure decoded as APIError: %v", err)
	}
}
