// Package spill is the engine's disk-backed overflow tier: when a query's
// resource.Budget cannot hold the working set in memory, operators write
// checksummed run files under a query-scoped temp directory and stream them
// back instead of failing with ErrBudgetExceeded.
//
// File format: a run file is a sequence of frames, each
//
//	[payload length uint32 BE][CRC32-Castagnoli of payload uint32 BE][payload]
//
// Writers buffer through bufio and never fsync — spill files are pure
// scratch; on a crash the whole directory is garbage and correctness never
// depends on its contents. Every read verifies the frame checksum, so a
// torn write, bit rot, or an injected corruption is detected before any
// decoded byte reaches the engine. Callers decide the corruption policy:
// aggregation merges fail with a typed error (the alternative is a wrong
// answer), the NLJP memo overflow treats it as a cache miss and recomputes
// from source.
//
// Every IO path carries a failpoint site (failpoint.SpillWrite / SpillFlush /
// SpillRead / SpillCorrupt / SpillRemove) so fault matrices can drive error,
// panic, and corrupt-frame modes through real code paths.
package spill

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync/atomic"

	"smarticeberg/internal/failpoint"
)

// ErrCorrupt is wrapped by every checksum-mismatch error.
var ErrCorrupt = errors.New("spill: corrupt frame")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

const frameHeaderSize = 8

// Stats is a point-in-time snapshot of a Manager's IO counters.
type Stats struct {
	Files        int64 // run files created
	FramesOut    int64 // frames written
	BytesOut     int64 // payload + header bytes written
	FramesIn     int64 // frames read back
	Corruptions  int64 // checksum mismatches detected
	OverflowPuts int64 // entries written to overflow indexes
	OverflowGets int64 // entries served from overflow indexes
}

// Manager owns one query's spill directory. All run files for the query are
// created inside it, so Cleanup — called from the executor's defer on
// success, error, cancellation, and panic alike — removes every temp file in
// one RemoveAll.
type Manager struct {
	dir     string
	seq     atomic.Int64
	cleaned atomic.Bool

	files        atomic.Int64
	framesOut    atomic.Int64
	bytesOut     atomic.Int64
	framesIn     atomic.Int64
	corruptions  atomic.Int64
	overflowPuts atomic.Int64
	overflowGets atomic.Int64
}

// NewManager creates a fresh query-scoped spill directory under parent
// (os.TempDir() when parent is empty).
func NewManager(parent string) (*Manager, error) {
	if parent == "" {
		parent = os.TempDir()
	}
	if err := failpoint.Inject(failpoint.SpillDir); err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp(parent, "smarticeberg-spill-*")
	if err != nil {
		return nil, fmt.Errorf("spill: create dir: %w", err)
	}
	return &Manager{dir: dir}, nil
}

// Dir returns the query's spill directory.
func (m *Manager) Dir() string { return m.dir }

// Stats snapshots the manager's IO counters.
func (m *Manager) Stats() Stats {
	return Stats{
		Files:        m.files.Load(),
		FramesOut:    m.framesOut.Load(),
		BytesOut:     m.bytesOut.Load(),
		FramesIn:     m.framesIn.Load(),
		Corruptions:  m.corruptions.Load(),
		OverflowPuts: m.overflowPuts.Load(),
		OverflowGets: m.overflowGets.Load(),
	}
}

// Cleanup removes the whole spill directory. Idempotent; the executor calls
// it from a defer so files are gone on success, error, cancel, and panic.
func (m *Manager) Cleanup() error {
	if m.cleaned.Swap(true) {
		return nil
	}
	ferr := failpoint.Inject(failpoint.SpillRemove)
	// Remove even when a fault is injected: leaking temp files because the
	// test harness asked for a remove error would be a real leak.
	rerr := os.RemoveAll(m.dir)
	if ferr != nil {
		return ferr
	}
	return rerr
}

// Create opens a new run file for writing. The name is prefix + a
// manager-unique sequence number.
func (m *Manager) Create(prefix string) (*Writer, error) {
	if err := failpoint.Inject(failpoint.SpillWrite); err != nil {
		return nil, err
	}
	path := filepath.Join(m.dir, fmt.Sprintf("%s-%06d.run", prefix, m.seq.Add(1)))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o600)
	if err != nil {
		return nil, fmt.Errorf("spill: create run: %w", err)
	}
	m.files.Add(1)
	return newWriter(m, f, path), nil
}

// Remove deletes one run file, tolerating files already gone (a merged
// partition is removed eagerly; Close's backstop may try again).
func (m *Manager) Remove(path string) error {
	ferr := failpoint.Inject(failpoint.SpillRemove)
	rerr := os.Remove(path)
	if ferr != nil {
		return ferr
	}
	if rerr != nil && !os.IsNotExist(rerr) {
		return rerr
	}
	return nil
}

// encodeFrame appends one [len][crc][payload] frame to dst.
func encodeFrame(dst, payload []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.BigEndian.AppendUint32(dst, crc32.Checksum(payload, castagnoli))
	return append(dst, payload...)
}

// verifyFrame checks a frame's checksum and returns its payload. The
// SpillCorrupt failpoint flips a payload byte first, so injected corruption
// exercises the genuine detection path.
func verifyFrame(m *Manager, where string, hdr, payload []byte) ([]byte, error) {
	if err := failpoint.Inject(failpoint.SpillCorrupt); err != nil && len(payload) > 0 {
		payload[0] ^= 0xff
	}
	want := binary.BigEndian.Uint32(hdr[4:])
	if got := crc32.Checksum(payload, castagnoli); got != want {
		m.corruptions.Add(1)
		return nil, fmt.Errorf("%w: %s: crc %08x, want %08x", ErrCorrupt, where, got, want)
	}
	m.framesIn.Add(1)
	return payload, nil
}
