package spill

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"testing"

	"smarticeberg/internal/failpoint"
)

func newTestManager(t *testing.T) *Manager {
	t.Helper()
	m, err := NewManager(t.TempDir())
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	t.Cleanup(func() {
		if err := m.Cleanup(); err != nil {
			t.Errorf("Cleanup: %v", err)
		}
	})
	return m
}

func TestSpillFrameRoundTrip(t *testing.T) {
	m := newTestManager(t)
	w, err := m.Create("test")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	var want [][]byte
	for i := 0; i < 100; i++ {
		p := []byte(fmt.Sprintf("frame-%04d-%s", i, bytes.Repeat([]byte{byte(i)}, i)))
		want = append(want, p)
		if err := w.WriteFrame(p); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
	}
	if err := w.WriteFrame(nil); err != nil { // empty payload is legal
		t.Fatalf("WriteFrame(empty): %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	r, err := m.Open(w.Path())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer r.Close()
	for i, p := range want {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("Next[%d]: %v", i, err)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("frame %d mismatch: got %q want %q", i, got, p)
		}
	}
	if got, err := r.Next(); err != nil || len(got) != 0 || got == nil {
		t.Fatalf("empty frame: got %v err %v", got, err)
	}
	if got, err := r.Next(); got != nil || err != nil {
		t.Fatalf("want clean EOF, got %v err %v", got, err)
	}
	st := m.Stats()
	if st.Files != 1 || st.FramesOut != 101 || st.FramesIn != 101 || st.Corruptions != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestSpillDetectsFlippedByte(t *testing.T) {
	m := newTestManager(t)
	w, err := m.Create("test")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteFrame([]byte("payload payload payload")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(w.Path())
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x01
	if err := os.WriteFile(w.Path(), raw, 0o600); err != nil {
		t.Fatal(err)
	}
	r, err := m.Open(w.Path())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Next(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
	if m.Stats().Corruptions != 1 {
		t.Fatalf("corruption not counted: %+v", m.Stats())
	}
}

func TestSpillDetectsTruncation(t *testing.T) {
	m := newTestManager(t)
	w, err := m.Create("test")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteFrame(bytes.Repeat([]byte("x"), 100)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(w.Path())
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{len(raw) - 10, frameHeaderSize - 3} {
		if err := os.WriteFile(w.Path(), raw[:cut], 0o600); err != nil {
			t.Fatal(err)
		}
		r, err := m.Open(w.Path())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.Next(); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("cut=%d: want ErrCorrupt, got %v", cut, err)
		}
		r.Close()
	}
}

func TestSpillCorruptFailpoint(t *testing.T) {
	defer failpoint.Reset()
	m := newTestManager(t)
	w, err := m.Create("test")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteFrame([]byte("checksummed")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	failpoint.Enable(failpoint.SpillCorrupt, failpoint.Error(nil))
	r, err := m.Open(w.Path())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Next(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt via failpoint, got %v", err)
	}
}

func TestSpillIndex(t *testing.T) {
	m := newTestManager(t)
	ix, err := m.NewIndex("memo")
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	for i := 0; i < 20; i++ {
		key := []byte(fmt.Sprintf("key-%d", i))
		if err := ix.Put(key, []byte(fmt.Sprintf("val-%d", i))); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	// Overwrite points at the newest frame.
	if err := ix.Put([]byte("key-3"), []byte("val-3-v2")); err != nil {
		t.Fatal(err)
	}
	got, ok, err := ix.Get([]byte("key-3"))
	if err != nil || !ok || string(got) != "val-3-v2" {
		t.Fatalf("Get key-3: %q ok=%v err=%v", got, ok, err)
	}
	if _, ok, err := ix.Get([]byte("missing")); ok || err != nil {
		t.Fatalf("Get missing: ok=%v err=%v", ok, err)
	}
	ix.Delete([]byte("key-3"))
	if _, ok, _ := ix.Get([]byte("key-3")); ok {
		t.Fatal("deleted key still addressable")
	}
	if ix.Len() != 19 {
		t.Fatalf("Len = %d, want 19", ix.Len())
	}
}

func TestSpillIndexCorruptGet(t *testing.T) {
	defer failpoint.Reset()
	m := newTestManager(t)
	ix, err := m.NewIndex("memo")
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	if err := ix.Put([]byte("k"), []byte("value-bytes")); err != nil {
		t.Fatal(err)
	}
	failpoint.Enable(failpoint.SpillCorrupt, failpoint.Once(failpoint.Error(nil)))
	if _, _, err := ix.Get([]byte("k")); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
	// Undamaged on disk: the corruption was injected in memory, so the next
	// read (failpoint spent) succeeds.
	got, ok, err := ix.Get([]byte("k"))
	if err != nil || !ok || string(got) != "value-bytes" {
		t.Fatalf("re-Get: %q ok=%v err=%v", got, ok, err)
	}
}

func TestSpillCleanupRemovesEverything(t *testing.T) {
	parent := t.TempDir()
	m, err := NewManager(parent)
	if err != nil {
		t.Fatal(err)
	}
	w, err := m.Create("a")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteFrame([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.NewIndex("b"); err != nil {
		t.Fatal(err)
	}
	if err := m.Cleanup(); err != nil {
		t.Fatalf("Cleanup: %v", err)
	}
	if err := m.Cleanup(); err != nil {
		t.Fatalf("second Cleanup: %v", err)
	}
	ents, err := os.ReadDir(parent)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("spill parent not empty after Cleanup: %v", ents)
	}
}

func TestSpillWriterDiscardTolerant(t *testing.T) {
	m := newTestManager(t)
	w, err := m.Create("a")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Remove(w.Path()); err != nil {
		t.Fatal(err)
	}
	// Already removed: Discard must not error on the missing file.
	if err := w.Discard(); err != nil {
		t.Fatalf("Discard after Remove: %v", err)
	}
}

func TestSpillDirFailpoint(t *testing.T) {
	defer failpoint.Reset()
	boom := errors.New("boom")
	failpoint.Enable(failpoint.SpillDir, failpoint.Error(boom))
	parent := t.TempDir()
	m, err := NewManager(parent)
	if !errors.Is(err, boom) {
		t.Fatalf("NewManager error = %v, want %v", err, boom)
	}
	if m != nil {
		t.Fatal("NewManager returned a manager alongside an injected error")
	}
	entries, derr := os.ReadDir(parent)
	if derr != nil {
		t.Fatal(derr)
	}
	if len(entries) != 0 {
		t.Fatalf("spill dir creation failed but %d entries exist under parent", len(entries))
	}
}
