package spill

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"smarticeberg/internal/failpoint"
)

// Index is an append-only on-disk key→payload store: the overflow tier for
// the NLJP memoization cache. Frames are appended to one file; an in-memory
// map keeps each key's offset, so a Get is a single ReadAt plus a checksum
// check. Entries are never updated in place — a re-Put of the same key just
// points the map at the new frame.
type Index struct {
	mu   sync.Mutex
	mgr  *Manager
	f    *os.File
	path string
	refs map[string]indexRef
	off  int64
	buf  []byte
}

type indexRef struct {
	off int64
	n   int // payload length
}

// RefBytes approximates the resident cost of one index entry (map key +
// ref), used for budget accounting by callers.
func RefBytes(key string) int64 { return int64(len(key)) + 64 }

// NewIndex creates an overflow index file inside the manager's directory.
func (m *Manager) NewIndex(name string) (*Index, error) {
	if err := failpoint.Inject(failpoint.SpillWrite); err != nil {
		return nil, err
	}
	path := filepath.Join(m.dir, fmt.Sprintf("%s-%06d.idx", name, m.seq.Add(1)))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o600)
	if err != nil {
		return nil, fmt.Errorf("spill: create index: %w", err)
	}
	m.files.Add(1)
	return &Index{mgr: m, f: f, path: path, refs: make(map[string]indexRef)}, nil
}

// Put appends one entry. The key and payload are copied; callers may reuse
// their buffers.
func (ix *Index) Put(key []byte, payload []byte) error {
	if err := failpoint.Inject(failpoint.SpillWrite); err != nil {
		return err
	}
	if len(payload) > maxFrameSize {
		return fmt.Errorf("spill: index payload %d exceeds %d bytes", len(payload), maxFrameSize)
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.buf = encodeFrame(ix.buf[:0], payload)
	if _, err := ix.f.WriteAt(ix.buf, ix.off); err != nil {
		return fmt.Errorf("spill: index write: %w", err)
	}
	ix.refs[string(key)] = indexRef{off: ix.off, n: len(payload)}
	ix.off += int64(len(ix.buf))
	ix.mgr.framesOut.Add(1)
	ix.mgr.bytesOut.Add(int64(len(ix.buf)))
	ix.mgr.overflowPuts.Add(1)
	return nil
}

// Get returns the payload stored for key, or ok=false when absent. The
// returned slice is only valid until the next Index call. A checksum
// mismatch returns an error wrapping ErrCorrupt; callers are expected to
// treat any Get error as a miss and recompute from source.
func (ix *Index) Get(key []byte) (payload []byte, ok bool, err error) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ref, ok := ix.refs[string(key)]
	if !ok {
		return nil, false, nil
	}
	if err := failpoint.Inject(failpoint.SpillRead); err != nil {
		return nil, false, err
	}
	n := frameHeaderSize + ref.n
	if cap(ix.buf) < n {
		ix.buf = make([]byte, n)
	}
	ix.buf = ix.buf[:n]
	if _, err := ix.f.ReadAt(ix.buf, ref.off); err != nil {
		ix.mgr.corruptions.Add(1)
		return nil, false, fmt.Errorf("%w: %s: short entry read: %v", ErrCorrupt, ix.path, err)
	}
	hdr, body := ix.buf[:frameHeaderSize], ix.buf[frameHeaderSize:]
	if got := int(binary.BigEndian.Uint32(hdr)); got != ref.n {
		ix.mgr.corruptions.Add(1)
		return nil, false, fmt.Errorf("%w: %s: entry length %d, want %d", ErrCorrupt, ix.path, got, ref.n)
	}
	body, err = verifyFrame(ix.mgr, ix.path, hdr, body)
	if err != nil {
		return nil, false, err
	}
	ix.mgr.overflowGets.Add(1)
	return body, true, nil
}

// Has reports whether key is addressable, without touching the disk.
// Callers use it to avoid double-charging budget for a re-Put.
func (ix *Index) Has(key []byte) bool {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	_, ok := ix.refs[string(key)]
	return ok
}

// Delete drops a key from the index (the frame bytes stay on disk until
// Cleanup). Used to stop re-reading an entry that failed its checksum.
func (ix *Index) Delete(key []byte) {
	ix.mu.Lock()
	delete(ix.refs, string(key))
	ix.mu.Unlock()
}

// Len reports how many keys are currently addressable.
func (ix *Index) Len() int {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return len(ix.refs)
}

// Close closes the index file; Manager.Cleanup removes it.
func (ix *Index) Close() error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.refs = nil
	return ix.f.Close()
}
