package spill

import (
	"bufio"
	"fmt"
	"io"
	"os"

	"smarticeberg/internal/failpoint"
)

const writerBufSize = 64 << 10

// maxFrameSize bounds a single payload. A header whose length field exceeds
// it is treated as corruption rather than trusted as an allocation size.
const maxFrameSize = 64 << 20

// Writer appends checksummed frames to one run file.
type Writer struct {
	mgr     *Manager
	f       *os.File
	w       *bufio.Writer
	path    string
	frames  int64
	closed  bool
	scratch []byte
}

func newWriter(m *Manager, f *os.File, path string) *Writer {
	return &Writer{mgr: m, f: f, w: bufio.NewWriterSize(f, writerBufSize), path: path}
}

// Path returns the run file's path.
func (w *Writer) Path() string { return w.path }

// Frames returns how many frames have been written so far.
func (w *Writer) Frames() int64 { return w.frames }

// WriteFrame appends one frame holding payload. The payload is copied before
// return, so callers may reuse their buffer.
func (w *Writer) WriteFrame(payload []byte) error {
	if err := failpoint.Inject(failpoint.SpillWrite); err != nil {
		return err
	}
	if len(payload) > maxFrameSize {
		return fmt.Errorf("spill: frame payload %d exceeds %d bytes", len(payload), maxFrameSize)
	}
	w.scratch = encodeFrame(w.scratch[:0], payload)
	if _, err := w.w.Write(w.scratch); err != nil {
		return fmt.Errorf("spill: write frame: %w", err)
	}
	w.frames++
	w.mgr.framesOut.Add(1)
	w.mgr.bytesOut.Add(int64(len(w.scratch)))
	return nil
}

// Close flushes buffered frames and closes the file, which stays on disk for
// reading. Idempotent.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if err := failpoint.Inject(failpoint.SpillFlush); err != nil {
		_ = w.f.Close()
		return err
	}
	if err := w.w.Flush(); err != nil {
		_ = w.f.Close()
		return fmt.Errorf("spill: flush: %w", err)
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("spill: close: %w", err)
	}
	return nil
}

// Discard closes (if needed) and removes the run file. Used by operator
// Close paths as the per-file backstop; Manager.Cleanup remains the
// directory-level backstop.
func (w *Writer) Discard() error {
	cerr := w.Close()
	rerr := w.mgr.Remove(w.path)
	if cerr != nil {
		return cerr
	}
	return rerr
}

// Reader streams frames back from a closed run file, verifying each
// checksum.
type Reader struct {
	mgr  *Manager
	f    *os.File
	r    *bufio.Reader
	path string
	buf  []byte
	hdr  [frameHeaderSize]byte
}

// Open opens a run file for sequential frame reads.
func (m *Manager) Open(path string) (*Reader, error) {
	if err := failpoint.Inject(failpoint.SpillRead); err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("spill: open run: %w", err)
	}
	return &Reader{mgr: m, f: f, r: bufio.NewReaderSize(f, writerBufSize), path: path}, nil
}

// Next returns the next frame's payload, or (nil, nil) at a clean end of
// file. The payload buffer is reused by the following Next call. A frame cut
// short by a torn write is reported as corruption, not EOF.
func (r *Reader) Next() ([]byte, error) {
	if err := failpoint.Inject(failpoint.SpillRead); err != nil {
		return nil, err
	}
	if _, err := io.ReadFull(r.r, r.hdr[:]); err != nil {
		if err == io.EOF {
			return nil, nil
		}
		r.mgr.corruptions.Add(1)
		return nil, fmt.Errorf("%w: %s: truncated header", ErrCorrupt, r.path)
	}
	n := int(uint32(r.hdr[0])<<24 | uint32(r.hdr[1])<<16 | uint32(r.hdr[2])<<8 | uint32(r.hdr[3]))
	if n > maxFrameSize {
		r.mgr.corruptions.Add(1)
		return nil, fmt.Errorf("%w: %s: implausible frame length %d", ErrCorrupt, r.path, n)
	}
	if cap(r.buf) < n || r.buf == nil {
		// Never leave buf nil: an empty frame must stay distinguishable from
		// the (nil, nil) end-of-file return.
		r.buf = make([]byte, n, n+1)
	}
	r.buf = r.buf[:n]
	if _, err := io.ReadFull(r.r, r.buf); err != nil {
		r.mgr.corruptions.Add(1)
		return nil, fmt.Errorf("%w: %s: truncated payload", ErrCorrupt, r.path)
	}
	return verifyFrame(r.mgr, r.path, r.hdr[:], r.buf)
}

// Close closes the underlying file (the file itself stays until removed).
func (r *Reader) Close() error {
	return r.f.Close()
}
