// Equivalence harness for zone-map data skipping and sideways predicate
// transfer: every workload query plus the clustered skip mix runs with
// skipping on, transfer off, and both off, across batch sizes and worker
// counts, and every combination must be byte-identical to the row-path
// baseline. A separate matrix injects faults (error and panic) at the three
// skip-layer failpoints and demands graceful degradation: the query still
// succeeds with identical results, recording DegradeSkipDisabled — a broken
// filter may cost speed, never correctness. Run under -race in CI.
package smarticeberg_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"smarticeberg"
	"smarticeberg/internal/bench"
	"smarticeberg/internal/failpoint"
	"smarticeberg/internal/testleak"
)

// skipDB is the equivalence catalog plus the clustered table the skip mix
// targets: 6000 rows spans several zone blocks so block pruning, partial
// blocks, and the all-kept fallback all occur in the sweep.
func skipDB(t *testing.T) *smarticeberg.DB {
	t.Helper()
	db := equivDB(t)
	db.LoadClusteredPerformance(6000, 1)
	return db
}

// skipModes are the option combinations under test. The zero Options keep
// both mechanisms on, so "on" is the production default.
func skipModes() []struct {
	Name           string
	NoSkip, NoXfer bool
} {
	return []struct {
		Name           string
		NoSkip, NoXfer bool
	}{
		{"on", false, false},
		{"transfer-off", false, true},
		{"off", true, true},
	}
}

// TestSkipTransferEquivalence: the full query set — Figure-1 workload plus
// the clustered skip mix — through the batch pipeline at every (mode, batch
// size, worker count), byte-identical to the row path. The row path never
// consults zones or filters, so agreement proves skipping only removes rows
// the plan would have filtered anyway.
func TestSkipTransferEquivalence(t *testing.T) {
	db := skipDB(t)
	queries := equivQueries()
	for _, q := range bench.SkipQueries() {
		queries = append(queries, struct{ Name, SQL string }{q.Name, q.SQL})
	}
	for _, q := range queries {
		t.Run(q.Name, func(t *testing.T) {
			want, err := db.Query(q.SQL)
			if err != nil {
				t.Fatalf("row path: %v", err)
			}
			for _, mode := range skipModes() {
				for _, size := range []int{1, 7, 1024} {
					for _, w := range []int{1, 4} {
						opts := smarticeberg.Options{
							BatchSize: size, Workers: w,
							NoSkip: mode.NoSkip, NoTransfer: mode.NoXfer,
						}
						got, _, err := db.QueryOpt(q.SQL, opts)
						if err != nil {
							t.Fatalf("%s batch %d workers %d: %v", mode.Name, size, w, err)
						}
						assertIdenticalResults(t,
							fmt.Sprintf("%s batch %d workers %d", mode.Name, size, w), got, want)
					}
				}
			}
		})
	}
}

// TestSkipFaultMatrix: one fault — error or panic — at each skip-layer
// failpoint, through the public API on a query that builds zones, builds a
// transfer filter, and applies it. The contract is the opposite of the
// morsel matrix: the query must SUCCEED with byte-identical results, because
// every skip structure is an optimization the engine can decline. The report
// must record the skip-disabled degradation so operators can see why a query
// ran slow.
func TestSkipFaultMatrix(t *testing.T) {
	db := skipDB(t)
	errBoom := errors.New("boom: injected by test")
	// StarTransfer shape: equi self-join with a selective build side — its
	// plan reaches all three sites (zones on both scans, filter build on the
	// hash build, transfer onto the probe scan).
	sql := `SELECT S.playerid, COUNT(1)
FROM perf_clustered S, perf_clustered T
WHERE S.playerid = T.playerid AND T.b_h >= 150
GROUP BY S.playerid`
	opts := smarticeberg.Options{BatchSize: 1024}
	want, _, err := db.QueryOpt(sql, opts)
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}
	sites := []string{failpoint.ZoneMapBuild, failpoint.FilterBuild, failpoint.FilterTransfer}
	for _, site := range sites {
		for _, mode := range []string{"error", "panic"} {
			t.Run(fmt.Sprintf("%s/%s", site, mode), func(t *testing.T) {
				testleak.Check(t)
				defer failpoint.Reset()
				if mode == "error" {
					failpoint.Enable(site, failpoint.Once(failpoint.Error(errBoom)))
				} else {
					failpoint.Enable(site, failpoint.Once(failpoint.Panic("matrix")))
				}
				got, rep, err := db.QueryOpt(sql, opts)
				if err != nil {
					t.Fatalf("query failed: %v — skip faults must degrade, not fail", err)
				}
				if failpoint.Hits(site) == 0 {
					t.Fatalf("%s never fired — the site is not reachable in this plan", site)
				}
				assertIdenticalResults(t, "degraded run", got, want)
				found := false
				for _, d := range rep.Stats.Degradations {
					if d == smarticeberg.DegradeSkipDisabled {
						found = true
					}
				}
				if !found {
					t.Fatalf("Degradations = %v, want %v recorded",
						rep.Stats.Degradations, smarticeberg.DegradeSkipDisabled)
				}
			})
		}
	}
}

// TestSkipExplainAnalyze: the observability contract — EXPLAIN ANALYZE on a
// pruning scan reports skipped blocks, and on a transfer join reports the
// filter and the probe rows it dropped. Counters must vanish when the
// mechanisms are disabled.
func TestSkipExplainAnalyze(t *testing.T) {
	db := skipDB(t)
	scanSQL := `SELECT teamid, COUNT(1) FROM perf_clustered WHERE year >= 2012 GROUP BY teamid`
	text, _, err := db.ExplainAnalyzeOpts(scanSQL, smarticeberg.Options{BatchSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "[skipped blocks=") {
		t.Fatalf("EXPLAIN ANALYZE missing skip counters:\n%s", text)
	}
	joinSQL := `SELECT S.playerid, COUNT(1)
FROM perf_clustered S, perf_clustered T
WHERE S.playerid = T.playerid AND T.b_h >= 150
GROUP BY S.playerid`
	text, _, err = db.ExplainAnalyzeOpts(joinSQL, smarticeberg.Options{BatchSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "[transfer filter keys=") {
		t.Fatalf("EXPLAIN ANALYZE missing transfer counters:\n%s", text)
	}
	text, _, err = db.ExplainAnalyzeOpts(scanSQL,
		smarticeberg.Options{BatchSize: 1024, NoSkip: true, NoTransfer: true})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(text, "[skipped blocks=") || strings.Contains(text, "[transfer filter") {
		t.Fatalf("EXPLAIN ANALYZE shows skip counters with skipping disabled:\n%s", text)
	}
}
