// Benchmarks regenerating the paper's figures with the testing.B harness.
// Each figure of Section 8 has one benchmark; sub-benchmarks map to the
// bars/series of that figure. Sizes default to quick laptop settings —
// raise SMARTICEBERG_BENCH_N (and run cmd/experiments for the full sweeps)
// to approach the paper's scale.
//
// Suggested invocation (one timed run per configuration):
//
//	go test -bench=. -benchmem -benchtime=1x
package smarticeberg_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"smarticeberg/internal/bench"
	"smarticeberg/internal/engine"
	"smarticeberg/internal/server"
)

func benchN() int {
	if s := os.Getenv("SMARTICEBERG_BENCH_N"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 2000
}

// BenchmarkFigure1 times the eight workload queries under every system
// configuration of Figure 1.
func BenchmarkFigure1(b *testing.B) {
	ds := bench.NewDataset(benchN(), 0, 1)
	for _, q := range bench.Figure1Queries() {
		for _, sys := range bench.Figure1Systems() {
			b.Run(q.Name+"/"+sys.Name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, _, err := sys.Run(ds, q.SQL); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFigure3 reports cache sizes as benchmark metrics.
func BenchmarkFigure3(b *testing.B) {
	ds := bench.NewDataset(benchN(), 0, 1)
	for _, q := range bench.Figure1Queries() {
		b.Run(q.Name, func(b *testing.B) {
			var entries, bytes int64
			for i := 0; i < b.N; i++ {
				m := bench.Measure(ds, bench.SysAll, q.Name, q.SQL)
				if m.Err != nil {
					b.Fatal(m.Err)
				}
				entries, bytes = int64(m.Stats.Entries), m.Stats.Bytes
			}
			b.ReportMetric(float64(entries), "cache-entries")
			b.ReportMetric(float64(bytes), "cache-bytes")
		})
	}
}

// BenchmarkFigure4 times Q1 under the index configurations PK, PK+BT, and
// PK+BT+CI for baseline and prune+memo executions.
func BenchmarkFigure4(b *testing.B) {
	type cfg struct {
		name   string
		dropBT bool
		system bench.System
	}
	configs := []cfg{
		{"base-PK", true, bench.SysBaseNoIndex()},
		{"base-PK+BT", false, bench.SysBase},
		{"smart-PK", true, bench.SysPruneMemoNoIndex()},
		{"smart-PK+BT", false, bench.SysPruneMemo()},
		{"smart-PK+BT+CI", false, bench.SysAll},
	}
	sql := bench.SkybandSQL("b_h", "b_hr", 50)
	for _, c := range configs {
		b.Run(c.name, func(b *testing.B) {
			ds := bench.NewDataset(benchN(), 0, 1)
			if c.dropBT {
				bench.DropPerformanceIndexes(ds)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := c.system.Run(ds, sql); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigure5 sweeps the skyband HAVING threshold (series = system).
func BenchmarkFigure5(b *testing.B) {
	ds := bench.NewDataset(benchN(), 0, 1)
	for _, k := range []int{1, 25, 100, 250} {
		for _, sys := range []bench.System{bench.SysBase, bench.SysVendorA, bench.SysAll} {
			b.Run("k="+strconv.Itoa(k)+"/"+sys.Name, func(b *testing.B) {
				sql := bench.SkybandSQL("b_h", "b_hr", k)
				for i := 0; i < b.N; i++ {
					if _, _, err := sys.Run(ds, sql); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFigure6 sweeps the complex query's HAVING threshold.
func BenchmarkFigure6(b *testing.B) {
	kvn := benchN()
	ds := bench.NewDataset(kvn/3+1, kvn, 1)
	for _, k := range []int{2, 5, 20, 50} {
		for _, sys := range []bench.System{bench.SysBase, bench.SysVendorA, bench.SysAll} {
			b.Run("k="+strconv.Itoa(k)+"/"+sys.Name, func(b *testing.B) {
				sql := bench.ComplexSQL(k)
				for i := 0; i < b.N; i++ {
					if _, _, err := sys.Run(ds, sql); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFigure7 sweeps the skyband input size.
func BenchmarkFigure7(b *testing.B) {
	base := benchN()
	for _, n := range []int{base / 2, base, base * 2} {
		ds := bench.NewDataset(n, 0, 1)
		sql := bench.SkybandSQL("b_h", "b_hr", 50)
		for _, sys := range []bench.System{bench.SysBase, bench.SysVendorA, bench.SysAll} {
			b.Run("n="+strconv.Itoa(n)+"/"+sys.Name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, _, err := sys.Run(ds, sql); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFigure8 sweeps the complex query's input size.
func BenchmarkFigure8(b *testing.B) {
	base := benchN()
	for _, n := range []int{base / 2, base, base * 2} {
		ds := bench.NewDataset(n/3+1, n, 1)
		sql := bench.ComplexSQL(10)
		for _, sys := range []bench.System{bench.SysBase, bench.SysVendorA, bench.SysAll} {
			b.Run("n="+strconv.Itoa(n)+"/"+sys.Name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, _, err := sys.Run(ds, sql); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkNLJPWorkers measures the parallel NLJP binding loop on each
// figure query at 1 and 4 workers and writes the results — ns/op, allocs/op,
// cache hit counters, worker count — to BENCH_nljp.json in the working
// directory. `make bench` runs it; commit the refreshed file when numbers
// move. Wall-clock speedup requires real cores (GOMAXPROCS is recorded per
// record so single-core runs are not mistaken for scaling data).
func BenchmarkNLJPWorkers(b *testing.B) {
	ds := bench.NewDataset(benchN(), benchN(), 1)
	// The harness re-invokes each sub-benchmark while calibrating b.N; keep
	// only the final (largest-N) record per (query, workers) point.
	latest := map[string]bench.NLJPBenchRecord{}
	var order []string
	for _, q := range bench.Figure1Queries() {
		for _, w := range []int{1, 4} {
			name := q.Name + "/w" + strconv.Itoa(w)
			b.Run(name, func(b *testing.B) {
				rec, err := bench.MeasureNLJP(ds, q.Name, q.SQL, w, b.N)
				if err != nil {
					b.Fatal(err)
				}
				if _, seen := latest[name]; !seen {
					order = append(order, name)
				}
				latest[name] = rec
				b.ReportMetric(float64(rec.AllocsPerOp), "allocs/op-total")
				b.ReportMetric(float64(rec.Stats.MemoHits), "memo-hits")
				b.ReportMetric(float64(rec.Stats.PruneHits), "prune-hits")
			})
		}
	}
	if len(order) > 0 {
		records := make([]bench.NLJPBenchRecord, len(order))
		for i, name := range order {
			records[i] = latest[name]
		}
		if err := bench.WriteNLJPBench("BENCH_nljp.json", records); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblations times the design-choice ablations called out in
// DESIGN.md: cache index on/off for pruning, and the a-priori+prune
// combination on the complex query (the paper's future-work item).
func BenchmarkAblations(b *testing.B) {
	n := benchN()
	b.Run("prune-cache-index", func(b *testing.B) {
		ds := bench.NewDataset(n, 0, 1)
		sql := bench.SkybandSQL("b_h", "b_hr", 50)
		for _, sys := range []bench.System{bench.SysPruneNoCI(), bench.SysPrune} {
			b.Run(sys.Name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, _, err := sys.Run(ds, sql); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	})
	b.Run("complex-apriori-combination", func(b *testing.B) {
		ds := bench.NewDataset(n/3+1, n, 1)
		sql := bench.ComplexSQL(10)
		for _, sys := range []bench.System{bench.SysPruneMemo(), bench.SysAll} {
			b.Run(sys.Name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, _, err := sys.Run(ds, sql); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	})
}

// BenchmarkVector measures the vectorized pipeline against the row pipeline
// on the scan→filter→hash-aggregate and hash-join microbenches at chunk
// sizes 1, 64, and 1024, and writes BENCH_vector.json in the working
// directory. `make bench-vector` runs it pinned to one CPU so the recorded
// speedup is per-core throughput, not parallelism; GOMAXPROCS is recorded
// per record either way.
func BenchmarkVector(b *testing.B) {
	inputN := 10 * benchN()
	rows := bench.VectorRows(inputN)
	inner := bench.VectorRows(inputN / 50)
	benches := []struct {
		name  string
		build func(batchSize int) func() engine.Operator
	}{
		{"scanfilteragg", func(bs int) func() engine.Operator {
			return func() engine.Operator { return bench.ScanFilterAggPlan(rows, bs) }
		}},
		{"hashjoin", func(bs int) func() engine.Operator {
			return func() engine.Operator { return bench.HashJoinPlan(rows, inner, bs) }
		}},
	}
	// The harness re-invokes sub-benchmarks while calibrating b.N; keep only
	// the final (largest-N) record per point.
	latest := map[string]bench.VectorBenchRecord{}
	var order []string
	record := func(name string, rec bench.VectorBenchRecord) {
		if _, seen := latest[name]; !seen {
			order = append(order, name)
		}
		latest[name] = rec
	}
	for _, bm := range benches {
		b.Run(bm.name+"/row", func(b *testing.B) {
			rec, err := bench.MeasureVector(bm.name, "row", 0, inputN, b.N, bm.build(0))
			if err != nil {
				b.Fatal(err)
			}
			record(bm.name+"/row", rec)
			b.ReportMetric(rec.RowsPerSec, "rows/s")
			b.ReportMetric(float64(rec.AllocsPerOp), "allocs/op-total")
		})
		for _, size := range []int{1, 64, 1024} {
			name := fmt.Sprintf("%s/batch%d", bm.name, size)
			b.Run(name, func(b *testing.B) {
				rec, err := bench.MeasureVector(bm.name, "batch", size, inputN, b.N, bm.build(size))
				if err != nil {
					b.Fatal(err)
				}
				rec.Workers = 1
				record(name, rec)
				b.ReportMetric(rec.RowsPerSec, "rows/s")
				b.ReportMetric(float64(rec.AllocsPerOp), "allocs/op-total")
			})
		}
	}
	if len(order) > 0 {
		records := make([]bench.VectorBenchRecord, len(order))
		for i, name := range order {
			records[i] = latest[name]
		}
		if err := bench.WriteVectorBench("BENCH_vector.json", records); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMorsel sweeps the morsel-parallel scan→filter→aggregate pipeline
// at batch size 1024 over GOMAXPROCS {1,2,4} × morsel workers {1,2,4} and
// writes BENCH_morsel.json (`make bench-morsel`). The file carries a caveat
// when the recording machine has a single CPU: there the sweep documents that
// extra workers cost only scheduling overhead, not that they scale — output
// identity across the grid is what the equivalence harness asserts.
func BenchmarkMorsel(b *testing.B) {
	inputN := 10 * benchN()
	rows := bench.VectorRows(inputN)
	const size = 1024
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	latest := map[string]bench.VectorBenchRecord{}
	var order []string
	for _, procs := range []int{1, 2, 4} {
		for _, workers := range []int{1, 2, 4} {
			name := fmt.Sprintf("p%d/w%d", procs, workers)
			b.Run(name, func(b *testing.B) {
				runtime.GOMAXPROCS(procs)
				defer runtime.GOMAXPROCS(prev)
				rec, err := bench.MeasureVector("scanfilteragg", "batch", size, inputN, b.N,
					func() engine.Operator { return bench.ScanFilterAggPlanWorkers(rows, size, workers) })
				if err != nil {
					b.Fatal(err)
				}
				rec.Workers = workers
				if _, seen := latest[name]; !seen {
					order = append(order, name)
				}
				latest[name] = rec
				b.ReportMetric(rec.RowsPerSec, "rows/s")
				b.ReportMetric(float64(rec.AllocsPerOp), "allocs/op-total")
			})
		}
	}
	if len(order) > 0 {
		records := make([]bench.VectorBenchRecord, len(order))
		for i, name := range order {
			records[i] = latest[name]
		}
		if err := bench.WriteMorselBench("BENCH_morsel.json", records); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpill compares the in-memory aggregate against the same plan
// forced to spill at a quarter of its measured peak, row path and the
// production batch size. Regenerates BENCH_spill.json (`make bench-spill`).
func BenchmarkSpill(b *testing.B) {
	inputN := 10 * benchN()
	rows := bench.VectorRows(inputN)
	latest := map[string]bench.SpillBenchRecord{}
	var order []string
	record := func(name string, rec bench.SpillBenchRecord) {
		if _, seen := latest[name]; !seen {
			order = append(order, name)
		}
		latest[name] = rec
	}
	for _, size := range []int{0, 1024} {
		size := size
		build := func() engine.Operator { return bench.ScanFilterAggPlan(rows, size) }
		peak, err := bench.SpillAggPeak(rows, size)
		if err != nil {
			b.Fatal(err)
		}
		pipeline := "row"
		if size > 0 {
			pipeline = fmt.Sprintf("batch%d", size)
		}
		for _, mode := range []struct {
			name   string
			budget int64
		}{
			{"memory", 0},
			{"spill", peak / 4},
		} {
			name := fmt.Sprintf("scanfilteragg/%s/%s", pipeline, mode.name)
			b.Run(fmt.Sprintf("%s/%s", pipeline, mode.name), func(b *testing.B) {
				dir := b.TempDir()
				rec, err := bench.MeasureSpill("scanfilteragg", mode.name, mode.budget, dir, size, inputN, b.N, build)
				if err != nil {
					b.Fatal(err)
				}
				record(name, rec)
				b.ReportMetric(rec.RowsPerSec, "rows/s")
				if mode.name == "spill" {
					b.ReportMetric(float64(rec.SpillBytes), "spill-B/op")
				}
			})
		}
	}
	if len(order) > 0 {
		records := make([]bench.SpillBenchRecord, len(order))
		for i, name := range order {
			records[i] = latest[name]
		}
		if err := bench.WriteSpillBench("BENCH_spill.json", records); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServer load-tests icebergd over HTTP: N concurrent clients
// driving the Figure 1 query mix against one server, in an amply
// provisioned configuration and a deliberately squeezed one (the shed rate
// there documents typed 429s under overload, not a regression). Regenerates
// BENCH_server.json (`make bench-server`).
func BenchmarkServer(b *testing.B) {
	n := max(benchN()/4, 200)
	ds := bench.NewDataset(n, 0, 1)
	mix := []server.LoadQuery{}
	for _, q := range bench.Figure1Queries()[:4] { // Q1–Q3 skybands + Q4 pairs
		mix = append(mix, server.LoadQuery{Name: q.Name, SQL: q.SQL})
	}
	configs := []struct {
		name string
		cfg  server.Config
		load server.LoadOptions
	}{
		{"provisioned", server.Config{MaxConcurrent: 4, QueueDepth: 8, MemLimit: 256 << 20},
			server.LoadOptions{Clients: 4, Requests: 6}},
		{"squeezed", server.Config{MaxConcurrent: 1, QueueDepth: 0, MemLimit: 64 << 20},
			server.LoadOptions{Clients: 6, Requests: 4}},
	}
	latest := map[string]bench.ServerBenchRecord{}
	var order []string
	for _, tc := range configs {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := server.New(tc.cfg)
				for _, name := range ds.Cat.Names() {
					t, err := ds.Cat.Get(name)
					if err != nil {
						b.Fatal(err)
					}
					s.RegisterTable(t)
				}
				hs := httptest.NewServer(s.Handler())
				res, err := server.RunLoad(hs.URL, mix, tc.load)
				if err == nil {
					ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
					err = s.Drain(ctx)
					cancel()
				}
				hs.Close()
				if err != nil {
					b.Fatal(err)
				}
				if res.OK == 0 {
					b.Fatalf("load run completed no queries: %+v", res)
				}
				rec := bench.NewServerBenchRecord(tc.name, tc.cfg, res)
				if _, seen := latest[tc.name]; !seen {
					order = append(order, tc.name)
				}
				latest[tc.name] = rec
				b.ReportMetric(rec.P50Millis, "p50-ms")
				b.ReportMetric(rec.P99Millis, "p99-ms")
				b.ReportMetric(rec.ShedRate, "shed-rate")
				b.ReportMetric(rec.RowsPerSec, "rows/s")
			}
		})
	}
	if len(order) > 0 {
		records := make([]bench.ServerBenchRecord, len(order))
		for i, name := range order {
			records[i] = latest[name]
		}
		if err := bench.WriteServerBench("BENCH_server.json", records); err != nil {
			b.Fatal(err)
		}
	}
}
