module smarticeberg

go 1.22
