package smarticeberg_test

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"smarticeberg"
)

func discountDB(t *testing.T) *smarticeberg.DB {
	t.Helper()
	db := smarticeberg.Open()
	db.MustExec("CREATE TABLE Basket (bid BIGINT, item TEXT, did BIGINT, PRIMARY KEY (bid, item, did))")
	db.MustExec("CREATE TABLE Discount (did BIGINT, rate DOUBLE, PRIMARY KEY (did))")
	db.MustExec(`INSERT INTO Discount VALUES (1, 0.1), (2, 0.2), (3, 0.0)`)
	// item "a" appears in 3 baskets (threshold 3 keeps it), "b" in 1.
	db.MustExec(`INSERT INTO Basket VALUES
		(1,'a',1),(2,'a',1),(3,'a',2),
		(1,'b',2),
		(4,'c',3),(5,'c',3),(6,'c',3)`)
	return db
}

// TestExample7Monotone reproduces Example 7 of the paper: the discount-rate
// query with a monotone HAVING admits a-priori on Basket (L) but not on
// Discount (R).
func TestExample7Monotone(t *testing.T) {
	db := discountDB(t)
	const q = `
		SELECT item, rate, COUNT(DISTINCT bid)
		FROM Basket L, Discount R
		WHERE L.did = R.did
		GROUP BY item, rate
		HAVING COUNT(DISTINCT bid) >= 3`
	base, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	res, report, err := db.QueryOpt(q, smarticeberg.AllOptimizations())
	if err != nil {
		t.Fatal(err)
	}
	if !sameRows(base, res) {
		t.Fatalf("mismatch:\n%s\nvs\n%s\nreport:\n%s", base.String(), res.String(), report.Text)
	}
	if !strings.Contains(report.Text, "reduce L") {
		t.Errorf("expected an a-priori reducer on Basket (L):\n%s", report.Text)
	}
	if strings.Contains(report.Text, "reduce R") {
		t.Errorf("a-priori must not apply to Discount (R), per Example 7:\n%s", report.Text)
	}
}

// TestExample7AntiMonotone covers the example's second half: with the
// anti-monotone threshold and the declared dependency item → did, a-priori
// applies to Basket via the 𝔾_L → 𝕁_L check.
func TestExample7AntiMonotone(t *testing.T) {
	db := smarticeberg.Open()
	db.MustExec("CREATE TABLE Basket (bid BIGINT, item TEXT, did BIGINT, PRIMARY KEY (bid, item))")
	db.MustExec("CREATE TABLE Discount (did BIGINT, rate DOUBLE, PRIMARY KEY (did))")
	db.MustExec(`INSERT INTO Discount VALUES (1, 0.1), (2, 0.2)`)
	// item → did holds: each item always uses the same discount.
	db.MustExec(`INSERT INTO Basket VALUES
		(1,'a',1),(2,'a',1),(3,'a',1),
		(1,'b',2),(4,'b',2)`)
	if err := db.DeclareFD("Basket", []string{"item"}, []string{"did"}); err != nil {
		t.Fatal(err)
	}
	const q = `
		SELECT item, rate, COUNT(DISTINCT bid)
		FROM Basket L, Discount R
		WHERE L.did = R.did
		GROUP BY item, rate
		HAVING COUNT(DISTINCT bid) <= 2`
	base, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	res, report, err := db.QueryOpt(q, smarticeberg.Options{Apriori: true})
	if err != nil {
		t.Fatal(err)
	}
	if !sameRows(base, res) {
		t.Fatalf("mismatch:\n%s\nvs\n%s\nreport:\n%s", base.String(), res.String(), report.Text)
	}
	if !strings.Contains(report.Text, "anti-monotone") || !strings.Contains(report.Text, "reduce L") {
		t.Errorf("expected an anti-monotone reducer on Basket enabled by item → did:\n%s", report.Text)
	}
}

// TestPublicAPISurface exercises the remaining facade methods end to end.
func TestPublicAPISurface(t *testing.T) {
	db := smarticeberg.Open()
	db.LoadPlayerPerformance(400, 3)
	if n, err := db.TableRows("player_performance"); err != nil || n != 400 {
		t.Fatalf("TableRows: %d, %v", n, err)
	}
	db.LoadScores(60, 8, 3)
	db.LoadUnpivoted(300, 3)
	db.LoadBaskets(200, 40, 4, 3)
	if err := db.LoadObjects(100, "correlated", 3); err != nil {
		t.Fatal(err)
	}
	if err := db.LoadObjects(100, "sideways", 3); err == nil {
		t.Error("bad distribution name must error")
	}

	const q = `
		SELECT R.playerid, R.year, R.round, COUNT(1)
		FROM player_performance L, player_performance R
		WHERE L.b_h >= R.b_h AND L.b_hr >= R.b_hr
		  AND (L.b_h > R.b_h OR L.b_hr > R.b_hr)
		GROUP BY R.playerid, R.year, R.round
		HAVING COUNT(1) < 20`
	base, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	vendor, err := db.QueryVendorA(q)
	if err != nil {
		t.Fatal(err)
	}
	opt, report, err := db.QueryOpt(q, smarticeberg.AllOptimizations())
	if err != nil {
		t.Fatal(err)
	}
	if !sameRows(base, vendor) || !sameRows(base, opt) {
		t.Fatalf("executors disagree: base=%d vendor=%d opt=%d rows",
			len(base.Rows), len(vendor.Rows), len(opt.Rows))
	}
	if report.Stats.Bindings == 0 {
		t.Errorf("expected NLJP stats, got %+v", report.Stats)
	}

	// Index management.
	if err := db.CreateIndex("player_performance", "extra", "b_rbi"); err != nil {
		t.Fatal(err)
	}
	if err := db.DropIndexes("player_performance"); err != nil {
		t.Fatal(err)
	}
	if err := db.DeclarePositive("player_performance", "b_h"); err != nil {
		t.Fatal(err)
	}
	if err := db.DeclarePositive("player_performance", "nope"); err == nil {
		t.Error("DeclarePositive on missing column must fail")
	}

	// Explain, both flavors.
	plan, err := db.Explain(q, nil)
	if err != nil || !strings.Contains(plan, "HashAggregate") {
		t.Errorf("baseline explain: %v\n%s", err, plan)
	}
	opts := smarticeberg.AllOptimizations()
	rewrite, err := db.Explain(q, &opts)
	if err != nil || !strings.Contains(rewrite, "NLJP") {
		t.Errorf("optimizer explain: %v\n%s", err, rewrite)
	}

	// Result value conversion.
	for _, rowv := range opt.Rows {
		if _, ok := rowv[0].(int64); !ok {
			t.Fatalf("playerid should convert to int64, got %T", rowv[0])
		}
	}
}

func sameRows(a, b *smarticeberg.Result) bool {
	if len(a.Rows) != len(b.Rows) {
		return false
	}
	canon := func(r *smarticeberg.Result) []string {
		out := make([]string, len(r.Rows))
		for i, row := range r.Rows {
			parts := make([]string, len(row))
			for j, v := range row {
				if f, ok := v.(float64); ok {
					parts[j] = fmt.Sprintf("%.6f", f)
				} else {
					parts[j] = fmt.Sprintf("%v", v)
				}
			}
			out[i] = strings.Join(parts, "|")
		}
		sort.Strings(out)
		return out
	}
	ca, cb := canon(a), canon(b)
	for i := range ca {
		if ca[i] != cb[i] {
			return false
		}
	}
	return true
}
