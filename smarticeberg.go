// Package smarticeberg is a from-scratch Go implementation of the
// Smart-Iceberg system from "Optimizing Iceberg Queries with Complex Joins"
// (Walenz, Roy, Yang — SIGMOD 2017): an in-memory SQL engine plus an
// automatic optimizer for iceberg queries that combines generalized
// a-priori HAVING push-down, cache-based pruning via automatically derived
// subsumption predicates (Fourier–Motzkin elimination), and memoization,
// executed with the paper's NLJP (Nested-Loop Join with Pruning) operator.
//
// Typical use:
//
//	db := smarticeberg.Open()
//	db.MustExec(`CREATE TABLE Object (id BIGINT, x DOUBLE, y DOUBLE, PRIMARY KEY (id))`)
//	db.MustExec(`INSERT INTO Object VALUES (1, 0.5, 0.5), ...`)
//	res, report, err := db.QueryOpt(`
//	    SELECT L.id, COUNT(*)
//	    FROM Object L, Object R
//	    WHERE L.x <= R.x AND L.y <= R.y AND (L.x < R.x OR L.y < R.y)
//	    GROUP BY L.id HAVING COUNT(*) <= 50`, smarticeberg.AllOptimizations())
//
// Query runs the same SQL through the unoptimized baseline executor (the
// paper's "PostgreSQL" reference point) and QueryVendorA through the
// parallel variant (the paper's "Vendor A" stand-in).
package smarticeberg

import (
	"context"
	"fmt"
	"io"
	"os"

	"smarticeberg/internal/engine"
	"smarticeberg/internal/fd"
	"smarticeberg/internal/iceberg"
	"smarticeberg/internal/resource"
	"smarticeberg/internal/spill"
	"smarticeberg/internal/sqlparser"
	"smarticeberg/internal/storage"
	"smarticeberg/internal/value"
	"smarticeberg/internal/workload"
)

// ErrBudgetExceeded is the sentinel wrapped by every memory-budget failure.
// A query run under Options.MemoryBudget first degrades (shrinking the NLJP
// cache, then abandoning the rewrite for the baseline plan); only when even
// the baseline cannot fit does it fail, with an error matching this via
// errors.Is.
var ErrBudgetExceeded = resource.ErrBudgetExceeded

// Options selects optimizer techniques; see the package documentation of
// the corresponding paper sections.
type Options struct {
	// Apriori enables generalized a-priori reducers (Section 4).
	Apriori bool
	// Prune enables NLJP cache-based pruning (Section 5).
	Prune bool
	// Memo enables NLJP memoization (Section 6).
	Memo bool
	// CacheIndex indexes the pruning cache ("CI" in Figure 4).
	CacheIndex bool
	// NoIndexes disables index nested-loop joins in sub-plans (the "PK
	// only" configuration of Figure 4). The zero value keeps indexes on.
	NoIndexes bool
	// BindingOrder explores NLJP bindings in "asc" or "desc" order of the
	// pruning predicate's range-hint column ("" keeps plan order).
	BindingOrder string
	// CacheLimit bounds NLJP cache entries (0 = unbounded); the oldest
	// entry is evicted first.
	CacheLimit int
	// Workers is the degree of parallelism for every parallel executor: the
	// NLJP binding loop (w > 1 uses w goroutines over a sharded cache) and,
	// when BatchSize > 0, the morsel-driven parallel table scans inside the
	// batch pipeline. 0 or a negative value selects min(4, GOMAXPROCS), 1
	// forces sequential execution. Results are byte-identical for every
	// setting.
	Workers int
	// Ctx, when non-nil, carries cancellation and deadlines into optimized
	// execution: a cancelled context aborts the query mid-stream (including
	// parallel workers) with the context's error.
	Ctx context.Context
	// MemoryBudget caps the query's accounted memory in bytes (0 =
	// unlimited). Under pressure the NLJP cache degrades before the
	// optimizer abandons its rewrite for the baseline plan; only when even
	// that cannot fit does the query fail, with a typed error.
	MemoryBudget int64
	// BatchSize selects chunk-at-a-time (vectorized) execution for the
	// plan fragments NLJP runs internally — the inner relation scan, the
	// binding query, and per-binding inner aggregates. 0 keeps the
	// row-at-a-time path; results are identical for every setting.
	BatchSize int
	// Spill lets execution overflow to checksummed temp files instead of
	// failing when MemoryBudget is exceeded: hash aggregations spill their
	// group tables (results stay byte-identical) and the NLJP cache keeps
	// evicted memo entries on disk. All spill files are removed when the
	// query ends, however it ends.
	Spill bool
	// SpillDir is the parent directory for spill files; empty uses the
	// system temp directory.
	SpillDir string
	// NoSkip disables zone-map data skipping at the scan layer (block-level
	// min/max pruning under BatchSize > 0). The zero value keeps skipping
	// on; results are byte-identical either way.
	NoSkip bool
	// NoTransfer disables sideways predicate transfer: hash-join build
	// sides publishing Bloom filters and key envelopes to probe-side scans.
	// The zero value keeps transfer on; results are byte-identical either
	// way.
	NoTransfer bool
}

// AllOptimizations enables every technique, the paper's "all" bar.
func AllOptimizations() Options {
	return Options{Apriori: true, Prune: true, Memo: true, CacheIndex: true}
}

func (o Options) internal() iceberg.Options {
	return iceberg.Options{
		Apriori:      o.Apriori,
		Prune:        o.Prune,
		Memo:         o.Memo,
		CacheIndex:   o.CacheIndex,
		UseIndexes:   !o.NoIndexes,
		BindingOrder: o.BindingOrder,
		CacheLimit:   o.CacheLimit,
		Workers:      o.Workers,
		Ctx:          o.Ctx,
		MemBudget:    o.MemoryBudget,
		BatchSize:    o.BatchSize,
		Spill:        o.Spill,
		SpillDir:     o.SpillDir,
		NoSkip:       o.NoSkip,
		NoTransfer:   o.NoTransfer,
	}
}

// DegradeReason identifies one rung of the degradation ladder a
// budget-pressured query descended; see Stats.Degradations.
type DegradeReason = engine.DegradeReason

// The degradation ladder, in order: the NLJP cache sheds entries, operators
// spill to disk, and finally the optimizer abandons its rewrite for the
// baseline plan. Results stay exact on every rung; only when the baseline
// itself cannot fit does the query fail with ErrBudgetExceeded.
const (
	DegradeCacheShed = engine.DegradeCacheShed
	DegradeSpill     = engine.DegradeSpill
	DegradeBaseline  = engine.DegradeBaseline
	// DegradeSkipDisabled is off-ladder: a zone-map or transfer-filter
	// failure disabled data skipping for the query, which then ran at full
	// scan cost with identical results.
	DegradeSkipDisabled = engine.DegradeSkipDisabled
)

// SkipStats counts data-skipping work; see SkipTotals.
type SkipStats = engine.SkipStats

// SkipTotals reports process-wide data-skipping counters: blocks and rows
// skipped by zone maps, probe rows skipped by transferred filters, and
// filters built/transferred. Counters accumulate across queries; see
// ResetSkipTotals.
func SkipTotals() SkipStats { return engine.SkipTotals() }

// ResetSkipTotals zeroes the process-wide data-skipping counters.
func ResetSkipTotals() { engine.ResetSkipTotals() }

// Result is a fully evaluated query result. Row values are Go natives:
// int64, float64, string, bool, or nil for SQL NULL.
type Result struct {
	Columns []string
	Rows    [][]any

	raw *engine.Result
}

// String renders the result as an aligned table.
func (r *Result) String() string { return r.raw.String() }

func (r *Result) setRaw(raw *engine.Result) {
	r.raw = raw
	r.Columns = make([]string, len(raw.Columns))
	for i, c := range raw.Columns {
		r.Columns[i] = c.Name
	}
	r.Rows = make([][]any, len(raw.Rows))
	for i, row := range raw.Rows {
		vals := make([]any, len(row))
		for j, v := range row {
			vals[j] = toNative(v)
		}
		r.Rows[i] = vals
	}
}

func toNative(v value.Value) any {
	switch v.K {
	case value.Int:
		return v.I
	case value.Float:
		return v.F
	case value.Str:
		return v.S
	case value.Bool:
		return v.I != 0
	}
	return nil
}

// Stats reports what the NLJP cache did during an optimized execution; the
// paper's Figure 3 plots Entries/Bytes.
type Stats struct {
	CacheEntries int
	CacheBytes   int64
	Bindings     int64
	MemoHits     int64
	PruneHits    int64
	InnerEvals   int64
	// Degradations lists the rungs of the degradation ladder the run
	// descended under MemoryBudget pressure, in ladder order (cache-shed →
	// spill → baseline-fallback). Empty means the query ran entirely on the
	// fast path. Results are exact on every rung.
	Degradations []DegradeReason
	// SpilledEntries and SpillHits report the NLJP cache's disk overflow
	// tier: evicted memo entries preserved on disk, and lookups served from
	// there instead of recomputing the binding.
	SpilledEntries int64
	SpillHits      int64
}

// Degraded reports whether the run left the fast path for any reason.
func (s Stats) Degraded() bool { return len(s.Degradations) > 0 }

// Report documents the rewrites an optimized execution performed.
type Report struct {
	// Text is the human-readable optimizer report (reducers found, the
	// NLJP configuration, the derived pruning predicate).
	Text string
	// Stats aggregates cache statistics over all query blocks.
	Stats Stats
	// MemoryPeak is the high-water mark of accounted memory in bytes (0
	// when no MemoryBudget was set).
	MemoryPeak int64
}

// DB is an in-memory database instance.
type DB struct {
	cat *storage.Catalog
}

// Open creates an empty database.
func Open() *DB { return &DB{cat: storage.NewCatalog()} }

// OpenDir loads a database previously written by Save: a directory holding
// a catalog.json manifest (schemas, keys, FDs, indexes) and one CSV per
// table.
func OpenDir(dir string) (*DB, error) {
	cat, err := storage.LoadDir(dir)
	if err != nil {
		return nil, err
	}
	return &DB{cat: cat}, nil
}

// Save writes the whole database to a directory in the OpenDir format.
func (db *DB) Save(dir string) error { return db.cat.SaveDir(dir) }

// Exec runs a DDL/DML statement (CREATE TABLE, INSERT) or a query whose
// result is discarded.
func (db *DB) Exec(sql string) error {
	_, err := engine.Exec(db.cat, sql)
	return err
}

// MustExec is Exec that panics on error, for loading fixtures.
func (db *DB) MustExec(sql string) {
	if err := db.Exec(sql); err != nil {
		panic(err)
	}
}

// Query executes a SELECT with the baseline (unoptimized, serial) executor.
func (db *DB) Query(sql string) (*Result, error) {
	return db.QueryCtx(context.Background(), sql)
}

// QueryCtx is Query under a context: the query observes cancellation and
// deadlines mid-stream and returns the context's error.
func (db *DB) QueryCtx(ctx context.Context, sql string) (*Result, error) {
	raw, err := engine.ExecCtx(ctx, db.cat, sql)
	if err != nil {
		return nil, err
	}
	if raw == nil {
		return nil, fmt.Errorf("statement returned no result")
	}
	out := &Result{}
	out.setRaw(raw)
	return out, nil
}

// QueryVendorA executes a SELECT with the parallel baseline executor (the
// paper's commercial "Vendor A" stand-in).
func (db *DB) QueryVendorA(sql string) (*Result, error) {
	return db.QueryVendorACtx(context.Background(), sql)
}

// QueryVendorACtx is QueryVendorA under a context; cancellation cleanly
// shuts down the parallel workers before the error is returned.
func (db *DB) QueryVendorACtx(ctx context.Context, sql string) (*Result, error) {
	sel, err := sqlparser.ParseSelect(sql)
	if err != nil {
		return nil, err
	}
	ec := engine.NewExecContext(ctx, nil)
	p := engine.NewPlanner(db.cat)
	p.Parallel = true
	p.Exec = ec
	op, err := p.PlanSelect(sel, nil)
	if err != nil {
		return nil, err
	}
	rows, err := engine.RunExec(ec, op)
	if err != nil {
		return nil, err
	}
	out := &Result{}
	out.setRaw(&engine.Result{Columns: op.Schema(), Rows: rows})
	return out, nil
}

// QueryBatch executes a SELECT through the baseline planner's vectorized
// (chunk-at-a-time) pipeline with the given batch size. batchSize <= 0
// falls back to the row-at-a-time Volcano path; results are byte-identical
// for every setting.
func (db *DB) QueryBatch(sql string, batchSize int) (*Result, error) {
	return db.QueryBatchCtx(context.Background(), sql, batchSize)
}

// QueryBatchCtx is QueryBatch under a context; cancellation is observed at
// chunk granularity.
func (db *DB) QueryBatchCtx(ctx context.Context, sql string, batchSize int) (*Result, error) {
	return db.QueryBatchWorkersCtx(ctx, sql, batchSize, 0)
}

// QueryBatchWorkers is QueryBatch with an explicit morsel worker count for
// the batch pipeline's parallel table scans: 0 or a negative value selects
// min(4, GOMAXPROCS), 1 forces sequential scans. Results are byte-identical
// for every worker count.
func (db *DB) QueryBatchWorkers(sql string, batchSize, workers int) (*Result, error) {
	return db.QueryBatchWorkersCtx(context.Background(), sql, batchSize, workers)
}

// QueryBatchWorkersCtx is QueryBatchWorkers under a context.
func (db *DB) QueryBatchWorkersCtx(ctx context.Context, sql string, batchSize, workers int) (*Result, error) {
	sel, err := sqlparser.ParseSelect(sql)
	if err != nil {
		return nil, err
	}
	ec := engine.NewExecContext(ctx, nil)
	p := engine.NewPlanner(db.cat)
	p.Exec = ec
	p.BatchSize = batchSize
	p.Workers = workers
	op, err := p.PlanSelect(sel, nil)
	if err != nil {
		return nil, err
	}
	rows, err := engine.RunExecBatch(ec, op, batchSize)
	if err != nil {
		return nil, err
	}
	out := &Result{}
	out.setRaw(&engine.Result{Columns: op.Schema(), Rows: rows})
	return out, nil
}

// QueryOpt executes a SELECT with the Smart-Iceberg optimizer.
func (db *DB) QueryOpt(sql string, opts Options) (*Result, *Report, error) {
	sel, err := sqlparser.ParseSelect(sql)
	if err != nil {
		return nil, nil, err
	}
	raw, rep, err := iceberg.Exec(db.cat, sel, opts.internal())
	if err != nil {
		return nil, nil, err
	}
	out := &Result{}
	out.setRaw(raw)
	st := rep.TotalStats()
	return out, &Report{
		Text: rep.String(),
		Stats: Stats{
			CacheEntries:   st.Entries,
			CacheBytes:     st.Bytes,
			Bindings:       st.Bindings,
			MemoHits:       st.MemoHits,
			PruneHits:      st.PruneHits,
			InnerEvals:     st.InnerEvals,
			Degradations:   rep.Degradations,
			SpilledEntries: st.SpilledEntries,
			SpillHits:      st.SpillHits,
		},
		MemoryPeak: rep.MemoryPeak,
	}, nil
}

// Explain returns the baseline plan when opts is nil, or the optimizer's
// rewrite description when opts is given.
func (db *DB) Explain(sql string, opts *Options) (string, error) {
	sel, err := sqlparser.ParseSelect(sql)
	if err != nil {
		return "", err
	}
	if opts == nil {
		p := engine.NewPlanner(db.cat)
		op, err := p.PlanSelect(sel, nil)
		if err != nil {
			return "", err
		}
		return engine.Explain(op), nil
	}
	return iceberg.Describe(db.cat, sel, opts.internal())
}

// ExplainBatch returns the baseline plan as it would execute with the given
// vectorized batch size: each operator is annotated with "[batch N]" when it
// runs chunk-at-a-time and "[row]" when it falls back to row-at-a-time.
func (db *DB) ExplainBatch(sql string, batchSize int) (string, error) {
	sel, err := sqlparser.ParseSelect(sql)
	if err != nil {
		return "", err
	}
	p := engine.NewPlanner(db.cat)
	p.BatchSize = batchSize
	op, err := p.PlanSelect(sel, nil)
	if err != nil {
		return "", err
	}
	return engine.Explain(op), nil
}

// ExplainAnalyze executes a SELECT through the baseline planner and returns
// the plan annotated with actual per-operator row counts, plus the result.
func (db *DB) ExplainAnalyze(sql string) (string, *Result, error) {
	sel, err := sqlparser.ParseSelect(sql)
	if err != nil {
		return "", nil, err
	}
	p := engine.NewPlanner(db.cat)
	op, err := p.PlanSelect(sel, nil)
	if err != nil {
		return "", nil, err
	}
	text, rows, err := engine.ExplainAnalyze(op)
	if err != nil {
		return "", nil, err
	}
	out := &Result{}
	out.setRaw(&engine.Result{Columns: op.Schema(), Rows: rows})
	return text, out, nil
}

// ExplainAnalyzeOpts is ExplainAnalyze under execution options: the query
// runs with opts' context, memory budget, batch size, and spill setting, and
// the returned plan is annotated with any degradations the run suffered
// (e.g. "Degraded: spill" with the aggregate's spill/merge note).
func (db *DB) ExplainAnalyzeOpts(sql string, opts Options) (text string, res *Result, err error) {
	sel, err := sqlparser.ParseSelect(sql)
	if err != nil {
		return "", nil, err
	}
	ec := engine.NewExecContext(opts.Ctx, resource.NewBudget(opts.MemoryBudget))
	if opts.Spill {
		mgr, merr := spill.NewManager(opts.SpillDir)
		if merr != nil {
			return "", nil, merr
		}
		ec.SetSpill(mgr)
		defer func() {
			if cerr := mgr.Cleanup(); cerr != nil && err == nil {
				text, res, err = "", nil, cerr
			}
		}()
	}
	p := engine.NewPlanner(db.cat)
	p.Exec = ec
	p.BatchSize = opts.BatchSize
	p.Workers = opts.Workers
	p.NoZoneSkip = opts.NoSkip
	p.NoTransfer = opts.NoTransfer
	op, err := p.PlanSelect(sel, nil)
	if err != nil {
		return "", nil, err
	}
	text, rows, err := engine.ExplainAnalyzeExec(ec, op)
	if err != nil {
		return "", nil, err
	}
	out := &Result{}
	out.setRaw(&engine.Result{Columns: op.Schema(), Rows: rows})
	return text, out, nil
}

// CreateIndex declares a secondary sorted index (the "BT" indexes of
// Figure 4) over the named columns of a table.
func (db *DB) CreateIndex(table, name string, columns ...string) error {
	t, err := db.cat.Get(table)
	if err != nil {
		return err
	}
	_, err = t.CreateIndex(name, columns...)
	return err
}

// DropIndexes removes all secondary indexes of a table.
func (db *DB) DropIndexes(table string) error {
	t, err := db.cat.Get(table)
	if err != nil {
		return err
	}
	t.DropIndexes()
	return nil
}

// DeclarePositive marks columns as having a strictly positive domain,
// enabling the SUM rows of the monotonicity table (Table 2).
func (db *DB) DeclarePositive(table string, columns ...string) error {
	t, err := db.cat.Get(table)
	if err != nil {
		return err
	}
	for _, c := range columns {
		if _, err := t.ColumnIndex(c); err != nil {
			return err
		}
		t.Positive[lowerASCII(c)] = true
	}
	return nil
}

// DeclareFD declares a functional dependency from → to over a table's
// columns (beyond the primary key, which is declared in CREATE TABLE). The
// optimizer's safety checks (Theorem 2 of the paper) consume these; see
// Example 7, where item → did licenses an anti-monotone reduction.
func (db *DB) DeclareFD(table string, from, to []string) error {
	t, err := db.cat.Get(table)
	if err != nil {
		return err
	}
	for _, c := range append(append([]string{}, from...), to...) {
		if _, err := t.ColumnIndex(c); err != nil {
			return err
		}
	}
	t.FDs.Add(fd.FD{From: lowerAll(from), To: lowerAll(to)})
	return nil
}

func lowerAll(ss []string) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = lowerASCII(s)
	}
	return out
}

// ImportCSV bulk-loads a CSV file into an existing table. When header is
// true the first line names the columns (any order); empty fields load as
// NULL. It returns the number of rows loaded.
func (db *DB) ImportCSV(table, path string, header bool) (int, error) {
	t, err := db.cat.Get(table)
	if err != nil {
		return 0, err
	}
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	return t.LoadCSV(f, header)
}

// ExportCSV writes a table to a CSV file with a header line.
func (db *DB) ExportCSV(table, path string) error {
	t, err := db.cat.Get(table)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteCSV streams a query result as CSV.
func (r *Result) WriteCSV(w io.Writer) error {
	return storage.WriteRowsCSV(w, r.raw.Columns, r.raw.Rows)
}

// TableRows returns the number of rows in a table.
func (db *DB) TableRows(table string) (int, error) {
	t, err := db.cat.Get(table)
	if err != nil {
		return 0, err
	}
	return len(t.Rows), nil
}

func lowerASCII(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}

// ---------------------------------------------------------------------------
// Workload loaders (deterministic synthetic datasets; see DESIGN.md for the
// substitution rationale vs. the paper's MLB archive).

// LoadPlayerPerformance loads the pivoted season-statistics table used by
// the skyband experiments (Q1–Q3, Q8).
func (db *DB) LoadPlayerPerformance(n int, seed int64) {
	db.cat.Put(workload.PlayerPerformance(n, seed))
}

// LoadClusteredPerformance loads "perf_clustered": the same player-season
// data physically sorted by (year, playerid, round), the layout zone-map
// data skipping exploits.
func (db *DB) LoadClusteredPerformance(n int, seed int64) {
	db.cat.Put(workload.ClusteredPerformance(n, seed))
}

// LoadScores loads the Score table used by the pairs experiments (Q4–Q7).
func (db *DB) LoadScores(players, years int, seed int64) {
	db.cat.Put(workload.Scores(players, years, seed))
}

// LoadUnpivoted loads the key–value layout used by the complex query.
func (db *DB) LoadUnpivoted(n int, seed int64) {
	db.cat.Put(workload.UnpivotedPerformance(n, seed))
}

// LoadObjects loads a 2-D point table for plain k-skyband queries; dist is
// "independent", "correlated", or "anticorrelated".
func (db *DB) LoadObjects(n int, dist string, seed int64) error {
	var d workload.Dist
	switch dist {
	case "independent", "":
		d = workload.Independent
	case "correlated":
		d = workload.Correlated
	case "anticorrelated":
		d = workload.AntiCorrelated
	default:
		return fmt.Errorf("unknown distribution %q", dist)
	}
	db.cat.Put(workload.Objects(n, d, seed))
	return nil
}

// LoadBaskets loads a Zipf-distributed market-basket table.
func (db *DB) LoadBaskets(nBaskets, nItems, avgSize int, seed int64) {
	db.cat.Put(workload.Baskets(nBaskets, nItems, avgSize, 1.4, seed))
}
