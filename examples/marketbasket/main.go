// Marketbasket: the frequent item-pair query of the paper's Listing 1,
// where the generalized a-priori technique is exactly the classic Apriori
// reduction — items individually below the support threshold are removed
// before the self-join.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"smarticeberg"
)

func main() {
	baskets := flag.Int("baskets", 20000, "number of baskets")
	items := flag.Int("items", 500, "number of distinct items")
	support := flag.Int("support", 60, "minimum pair support")
	flag.Parse()

	db := smarticeberg.Open()
	db.LoadBaskets(*baskets, *items, 6, 1)

	q := fmt.Sprintf(`
		SELECT i1.item, i2.item, COUNT(*)
		FROM Basket i1, Basket i2
		WHERE i1.bid = i2.bid AND i1.item < i2.item
		GROUP BY i1.item, i2.item
		HAVING COUNT(*) >= %d`, *support)

	start := time.Now()
	base, err := db.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	baseSec := time.Since(start).Seconds()

	start = time.Now()
	opt, report, err := db.QueryOpt(q, smarticeberg.Options{Apriori: true})
	if err != nil {
		log.Fatal(err)
	}
	optSec := time.Since(start).Seconds()

	fmt.Printf("frequent pairs (support >= %d): %d\n", *support, len(opt.Rows))
	for i, row := range opt.Rows {
		if i >= 8 {
			fmt.Printf("  ... and %d more\n", len(opt.Rows)-8)
			break
		}
		fmt.Printf("  %v + %v appear together in %v baskets\n", row[0], row[1], row[2])
	}
	fmt.Printf("\nbaseline %0.3fs, a-priori %0.3fs; rows agree: %v\n",
		baseSec, optSec, len(base.Rows) == len(opt.Rows))
	fmt.Println("\noptimizer report (both sides of the self-join are reduced):")
	fmt.Print(report.Text)
}
