// Discounts: Example 7 of the paper at scale. The query joins baskets with
// a discount table and keeps (item, rate) combinations appearing in many
// baskets. With the monotone threshold, a-priori reduces Basket because
// rate and did make Discount's side a superkey; with the anti-monotone
// variant, the reduction is only licensed once the functional dependency
// item → did is declared (each item always carries one discount) — the
// paper's example of a safety check that depends on database constraints.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"smarticeberg"
)

func main() {
	baskets := flag.Int("baskets", 30000, "number of baskets")
	items := flag.Int("items", 300, "number of distinct items")
	minB := flag.Int("min", 200, "minimum basket count for the monotone query")
	flag.Parse()

	db := smarticeberg.Open()
	db.MustExec("CREATE TABLE Basket (bid BIGINT, item TEXT, did BIGINT, PRIMARY KEY (bid, item))")
	db.MustExec("CREATE TABLE Discount (did BIGINT, rate DOUBLE, PRIMARY KEY (did))")

	rng := rand.New(rand.NewSource(1))
	const discounts = 8
	for d := 0; d < discounts; d++ {
		db.MustExec(fmt.Sprintf("INSERT INTO Discount VALUES (%d, %g)", d, float64(d)*0.05))
	}
	// Each item has one fixed discount: item → did holds by construction.
	itemDiscount := make([]int, *items)
	for i := range itemDiscount {
		itemDiscount[i] = rng.Intn(discounts)
	}
	var sb []string
	for b := 0; b < *baskets; b++ {
		size := 1 + rng.Intn(5)
		seen := map[int]bool{}
		for k := 0; k < size; k++ {
			it := int(rng.ExpFloat64() * float64(*items) / 6)
			if it >= *items || seen[it] {
				continue
			}
			seen[it] = true
			sb = append(sb, fmt.Sprintf("(%d, 'item%03d', %d)", b, it, itemDiscount[it]))
			if len(sb) == 500 {
				db.MustExec("INSERT INTO Basket VALUES " + join(sb))
				sb = sb[:0]
			}
		}
	}
	if len(sb) > 0 {
		db.MustExec("INSERT INTO Basket VALUES " + join(sb))
	}
	if err := db.DeclareFD("Basket", []string{"item"}, []string{"did"}); err != nil {
		log.Fatal(err)
	}

	q := fmt.Sprintf(`
		SELECT item, rate, COUNT(DISTINCT bid)
		FROM Basket L, Discount R
		WHERE L.did = R.did
		GROUP BY item, rate
		HAVING COUNT(DISTINCT bid) >= %d`, *minB)

	start := time.Now()
	base, err := db.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	baseSec := time.Since(start).Seconds()

	start = time.Now()
	opt, report, err := db.QueryOpt(q, smarticeberg.Options{Apriori: true, Memo: true})
	if err != nil {
		log.Fatal(err)
	}
	optSec := time.Since(start).Seconds()

	fmt.Printf("discount rates used by items in >= %d baskets: %d combinations\n", *minB, len(opt.Rows))
	fmt.Printf("baseline %.3fs, optimized %.3fs; rows agree: %v\n\n", baseSec, optSec, len(base.Rows) == len(opt.Rows))
	fmt.Println("monotone query report (a-priori reduces Basket):")
	fmt.Print(report.Text)

	// The anti-monotone variant: rarely-discount-used items. Safe to reduce
	// only because of the declared item → did dependency.
	anti := fmt.Sprintf(`
		SELECT item, rate, COUNT(DISTINCT bid)
		FROM Basket L, Discount R
		WHERE L.did = R.did
		GROUP BY item, rate
		HAVING COUNT(DISTINCT bid) <= %d`, *minB/20)
	_, antiReport, err := db.QueryOpt(anti, smarticeberg.Options{Apriori: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nanti-monotone variant report (reduction licensed by item → did):")
	fmt.Print(antiReport.Text)
}

func join(parts []string) string {
	out := parts[0]
	for _, p := range parts[1:] {
		out += ", " + p
	}
	return out
}
