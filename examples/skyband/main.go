// Skyband: the k-skyband query of the paper's Listing 2 at a realistic
// scale, comparing the baseline executor, the parallel executor ("Vendor
// A"), and the Smart-Iceberg NLJP plan with pruning and memoization.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"smarticeberg"
)

func main() {
	n := flag.Int("n", 20000, "number of objects")
	k := flag.Int("k", 50, "skyband threshold (dominated by at most k)")
	dist := flag.String("dist", "anticorrelated", "point distribution: independent, correlated, anticorrelated")
	flag.Parse()

	db := smarticeberg.Open()
	if err := db.LoadObjects(*n, *dist, 1); err != nil {
		log.Fatal(err)
	}

	q := fmt.Sprintf(`
		SELECT L.id, COUNT(*)
		FROM Object L, Object R
		WHERE L.x <= R.x AND L.y <= R.y AND (L.x < R.x OR L.y < R.y)
		GROUP BY L.id
		HAVING COUNT(*) <= %d`, *k)

	time1 := time.Now()
	base, err := db.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	baseSec := time.Since(time1).Seconds()

	time2 := time.Now()
	vendor, err := db.QueryVendorA(q)
	if err != nil {
		log.Fatal(err)
	}
	vendorSec := time.Since(time2).Seconds()

	time3 := time.Now()
	opt, report, err := db.QueryOpt(q, smarticeberg.AllOptimizations())
	if err != nil {
		log.Fatal(err)
	}
	optSec := time.Since(time3).Seconds()

	fmt.Printf("%d objects (%s), %d-skyband: %d results\n", *n, *dist, *k, len(opt.Rows))
	fmt.Printf("  baseline:      %8.3fs (%d rows)\n", baseSec, len(base.Rows))
	fmt.Printf("  vendor A:      %8.3fs (%d rows)\n", vendorSec, len(vendor.Rows))
	fmt.Printf("  smart-iceberg: %8.3fs (%.0fx speedup over baseline)\n", optSec, baseSec/optSec)
	fmt.Printf("  pruned %d of %d bindings; %d memo hits; only %d inner evaluations\n",
		report.Stats.PruneHits, report.Stats.Bindings, report.Stats.MemoHits, report.Stats.InnerEvals)
}
