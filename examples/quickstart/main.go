// Quickstart: create a table with plain SQL, run an iceberg query through
// the baseline executor and through the Smart-Iceberg optimizer, and print
// the optimizer's report showing which techniques fired.
package main

import (
	"fmt"
	"log"

	"smarticeberg"
)

func main() {
	db := smarticeberg.Open()

	// A tiny Object(id, x, y) table; in a real application x and y would be
	// price, rating, latency, ... — any dimensions you want few things to
	// dominate you on.
	db.MustExec(`CREATE TABLE Object (id BIGINT, x DOUBLE, y DOUBLE, PRIMARY KEY (id))`)
	db.MustExec(`INSERT INTO Object VALUES
		(1, 1, 9), (2, 2, 7), (3, 3, 8), (4, 4, 4), (5, 5, 6),
		(6, 6, 5), (7, 7, 2), (8, 8, 3), (9, 9, 1), (10, 2, 2)`)

	// The 1-skyband: objects dominated by at most one other object.
	const q = `
		SELECT L.id, COUNT(*)
		FROM Object L, Object R
		WHERE L.x <= R.x AND L.y <= R.y AND (L.x < R.x OR L.y < R.y)
		GROUP BY L.id
		HAVING COUNT(*) <= 1`

	base, err := db.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("baseline result:")
	fmt.Print(base.String())

	opt, report, err := db.QueryOpt(q, smarticeberg.AllOptimizations())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\noptimized result (identical rows):")
	fmt.Print(opt.String())

	fmt.Println("\nwhat the optimizer did:")
	fmt.Print(report.Text)
	fmt.Printf("cache: %d entries, %d memo hits, %d prune hits, %d inner evaluations for %d bindings\n",
		report.Stats.CacheEntries, report.Stats.MemoHits, report.Stats.PruneHits,
		report.Stats.InnerEvals, report.Stats.Bindings)
}
