// Complex: the four-way self-join of the paper's Listing 3 / Example 13
// ("unexciting products") over an unpivoted key–value table — the query
// whose combined a-priori + pruning rewrite the paper derives in Appendix D
// but could not yet run in its own prototype. This implementation applies
// the combination.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"smarticeberg"
)

func main() {
	n := flag.Int("n", 6000, "key-value rows")
	k := flag.Int("k", 10, "dominance threshold")
	flag.Parse()

	db := smarticeberg.Open()
	db.LoadUnpivoted(*n, 1)

	q := fmt.Sprintf(`
		SELECT S1.id, S1.attr, S2.attr, COUNT(*)
		FROM performance_kv S1, performance_kv S2, performance_kv T1, performance_kv T2
		WHERE S1.id = S2.id AND T1.id = T2.id
		  AND S1.category = T1.category
		  AND T1.attr = S1.attr AND T2.attr = S2.attr
		  AND T1.val > S1.val AND T2.val > S2.val
		GROUP BY S1.id, S1.attr, S2.attr
		HAVING COUNT(*) >= %d`, *k)

	start := time.Now()
	base, err := db.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	baseSec := time.Since(start).Seconds()

	start = time.Now()
	opt, report, err := db.QueryOpt(q, smarticeberg.AllOptimizations())
	if err != nil {
		log.Fatal(err)
	}
	optSec := time.Since(start).Seconds()

	fmt.Printf("seasons dominated on an attribute pair by >= %d same-era seasons: %d\n", *k, len(opt.Rows))
	fmt.Printf("baseline %0.3fs, smart-iceberg %0.3fs; result agreement: %v\n",
		baseSec, optSec, len(base.Rows) == len(opt.Rows))
	fmt.Println("\noptimizer report — two a-priori reducers (Example 13) feed an NLJP over {S1,S2}:")
	fmt.Print(report.Text)
}
