// Pairs: the sports-analytics query of the paper's Listing 4 — find player
// pairs with at least c shared team-year-rounds whose combined batting
// lines are dominated by at most k other pairs. The WITH block benefits
// from generalized a-priori; the outer block from pruning + memoization.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"smarticeberg"
)

func main() {
	players := flag.Int("players", 400, "number of players")
	c := flag.Int("c", 3, "minimum shared team-year-rounds")
	k := flag.Int("k", 20, "maximum dominating pairs")
	flag.Parse()

	db := smarticeberg.Open()
	db.LoadScores(*players, 12, 1)

	q := fmt.Sprintf(`
		WITH pair AS
		  (SELECT s1.pid AS pid1, s2.pid AS pid2,
		          AVG(s1.hits) AS hits1, AVG(s1.hruns) AS hruns1,
		          AVG(s2.hits) AS hits2, AVG(s2.hruns) AS hruns2
		   FROM Score s1, Score s2
		   WHERE s1.teamid = s2.teamid AND s1.year = s2.year
		     AND s1.round = s2.round AND s1.pid < s2.pid
		   GROUP BY s1.pid, s2.pid
		   HAVING COUNT(*) >= %d)
		SELECT L.pid1, L.pid2, COUNT(*)
		FROM pair L, pair R
		WHERE R.hits1 >= L.hits1 AND R.hruns1 >= L.hruns1
		  AND R.hits2 >= L.hits2 AND R.hruns2 >= L.hruns2
		  AND (R.hits1 > L.hits1 OR R.hruns1 > L.hruns1
		    OR R.hits2 > L.hits2 OR R.hruns2 > L.hruns2)
		GROUP BY L.pid1, L.pid2
		HAVING COUNT(*) <= %d`, *c, *k)

	start := time.Now()
	base, err := db.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	baseSec := time.Since(start).Seconds()

	start = time.Now()
	opt, report, err := db.QueryOpt(q, smarticeberg.AllOptimizations())
	if err != nil {
		log.Fatal(err)
	}
	optSec := time.Since(start).Seconds()

	fmt.Printf("notable pairs (played together >= %d rounds, dominated by <= %d): %d\n",
		*c, *k, len(opt.Rows))
	for i, row := range opt.Rows {
		if i >= 10 {
			fmt.Printf("  ... and %d more\n", len(opt.Rows)-10)
			break
		}
		fmt.Printf("  players %v & %v — dominated by %v pairs\n", row[0], row[1], row[2])
	}
	fmt.Printf("\nbaseline %0.3fs, smart-iceberg %0.3fs (%d rows each: %v)\n",
		baseSec, optSec, len(base.Rows), len(base.Rows) == len(opt.Rows))
	fmt.Println("\noptimizer report (note the a-priori reducers on the pair block):")
	fmt.Print(report.Text)
}
