GO ?= go

.PHONY: all build test race lint vet bench bench-vector bench-morsel bench-spill bench-server bench-skip bench-chaos faulttest spilltest servertest chaostest

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The engine package holds the concurrent executor (ParallelJoinAgg) and its
# determinism test; the full module runs under the race detector too.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# icelint runs the project's own analysis passes — the syntactic passes
# (opcontract, rowalias, valuecmp, closecheck, goexit) plus the
# flow-sensitive CFG passes (budgetbalance, cancelcheck, failcover) — over
# every non-testdata package. The 60-second wall-clock guard keeps the CFG
# engine honest: if linting the module ever takes longer, the build fails
# instead of the feedback loop quietly rotting. See DESIGN.md, "Static
# analysis & invariants".
lint: vet
	timeout 60 $(GO) run ./cmd/icelint ./...

# Resilience suite: the fault-injection matrices, cancellation/deadline
# coverage, memory-budget degradation, and goroutine-leak checks — always
# under the race detector, since these tests exist to catch cleanup races.
# See DESIGN.md, "Resilience: cancellation, budgets, failpoints".
faulttest:
	$(GO) test -race -count=1 -run 'Fault|Cancel|Deadline|Budget|Leak|Smoke' . ./internal/engine/ ./internal/iceberg/ ./internal/resource/ ./internal/failpoint/

# Spill suite: byte-identity of spilled aggregation, the disk-fault matrix
# (every spill failpoint × error/panic/corrupt-frame), the NLJP overflow
# tier, and the public-API acceptance tests — under the race detector, since
# spill cleanup runs on panic/cancellation paths. See DESIGN.md, "Spill &
# recovery".
spilltest:
	$(GO) test -race -count=1 -run 'Spill|TestCacheOverflow|TestCacheEntryCodec|TestNLJP' . ./internal/engine/ ./internal/iceberg/ ./internal/spill/ ./internal/bench/

# Server suite: icebergd's admission control, overload shedding, graceful
# drain, server-layer fault matrix, HTTP endpoints, and the shared-cache
# cross-session tests — under the race detector and the budgetcheck build
# tag, so a double-released reservation panics instead of saturating. See
# DESIGN.md, "Server & admission control".
servertest:
	$(GO) test -race -count=1 -tags budgetcheck ./internal/server/ ./internal/resource/

# Chaos suite: the seeded fault-storm soak (byte-correct rows or classified
# typed errors under probabilistic multi-site injection, degraded-retry
# recovery, breaker re-close, zero leaks after drain) plus the recovery,
# breaker, watchdog, and client retry-policy tests — under the race
# detector, since the storm exists to shake out cleanup races. See
# DESIGN.md, "Fault recovery & chaos".
chaostest:
	$(GO) test -race -count=1 -run 'TestChaos' .
	$(GO) test -race -count=1 -run 'TestRetry|TestDrainSkips|TestBreaker|TestWatchdog|TestQueuedWaiter' ./internal/server/
	$(GO) test -race -count=1 ./internal/client/ ./internal/failpoint/

# The root run regenerates BENCH_nljp.json (parallel NLJP worker sweep);
# the internal/bench run is the harness's own benchmark smoke.
bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./internal/bench/...

# Row vs batch microbenchmarks (scan→filter→hash-aggregate and hash join at
# batch sizes 1/64/1024), pinned to one CPU so the speedup is per-core, not
# parallelism. Regenerates BENCH_vector.json. See DESIGN.md, "Vectorized
# execution".
bench-vector:
	$(GO) test -bench=BenchmarkVector -benchtime=100x -cpu=1 -run=^$$ .

# Morsel-parallel scan sweep: GOMAXPROCS {1,2,4} × morsel workers {1,2,4} on
# the scan→filter→aggregate pipeline at batch 1024. The benchmark sets
# GOMAXPROCS itself, so no -cpu pin. Regenerates BENCH_morsel.json (with a
# caveat field when the host has one CPU). See DESIGN.md, "Columnar layout &
# the morsel scheduler".
bench-morsel:
	$(GO) test -bench=BenchmarkMorsel -benchtime=50x -run=^$$ .

# In-memory vs spilling aggregation at a quarter of the measured peak, row
# and batch pipelines, pinned to one CPU. Regenerates BENCH_spill.json. See
# DESIGN.md, "Spill & recovery".
bench-spill:
	$(GO) test -bench=BenchmarkSpill -benchtime=20x -cpu=1 -run=^$$ .

# icebergd load test: concurrent clients over HTTP against a provisioned and
# a deliberately squeezed admission configuration. Regenerates
# BENCH_server.json (p50/p99 latency, shed rate, rows/sec). See DESIGN.md,
# "Server & admission control".
bench-server:
	$(GO) test -bench=BenchmarkServer -benchtime=1x -run=^$$ .

# Zone-map data skipping & predicate transfer on the clustered workload:
# each skip-mix query with both mechanisms on vs off, pinned to one CPU.
# Regenerates BENCH_skip.json (rows/s, skipped-block %, skipped-probe %,
# transfer-filter build cost). See DESIGN.md, "Predicate transfer & data
# skipping".
bench-skip:
	$(GO) test -bench=BenchmarkSkip -benchtime=20x -cpu=1 -run=^$$ .

# Seeded chaos soak as an artifact: one record per storm seed with the armed
# sites, recovery rate, and post-drain invariants. Regenerates
# BENCH_chaos.json. See DESIGN.md, "Fault recovery & chaos".
bench-chaos:
	$(GO) test -bench=BenchmarkChaos -benchtime=1x -run=^$$ .
