GO ?= go

.PHONY: all build test race lint vet bench bench-vector faulttest

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The engine package holds the concurrent executor (ParallelJoinAgg) and its
# determinism test; the full module runs under the race detector too.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# icelint runs the project's own analysis passes (opcontract, rowalias,
# valuecmp, closecheck) over every package. See DESIGN.md, "Static analysis
# & invariants".
lint: vet
	$(GO) run ./cmd/icelint ./...

# Resilience suite: the fault-injection matrices, cancellation/deadline
# coverage, memory-budget degradation, and goroutine-leak checks — always
# under the race detector, since these tests exist to catch cleanup races.
# See DESIGN.md, "Resilience: cancellation, budgets, failpoints".
faulttest:
	$(GO) test -race -count=1 -run 'Fault|Cancel|Deadline|Budget|Leak|Smoke' . ./internal/engine/ ./internal/iceberg/ ./internal/resource/ ./internal/failpoint/

# The root run regenerates BENCH_nljp.json (parallel NLJP worker sweep);
# the internal/bench run is the harness's own benchmark smoke.
bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./internal/bench/...

# Row vs batch microbenchmarks (scan→filter→hash-aggregate and hash join at
# batch sizes 1/64/1024), pinned to one CPU so the speedup is per-core, not
# parallelism. Regenerates BENCH_vector.json. See DESIGN.md, "Vectorized
# execution".
bench-vector:
	$(GO) test -bench=BenchmarkVector -benchtime=100x -cpu=1 -run=^$$ .
