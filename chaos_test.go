package smarticeberg_test

import (
	"fmt"
	"testing"

	"smarticeberg/internal/bench"
	"smarticeberg/internal/failpoint"
	"smarticeberg/internal/server"
	"smarticeberg/internal/testleak"
)

// chaosServer builds a fresh icebergd with the Figure 1 dataset registered.
func chaosServer(tb testing.TB, n int) (*server.Server, []server.LoadQuery) {
	tb.Helper()
	ds := bench.NewDataset(n, 0, 1)
	// QueryMem is set explicitly: the shared cache carves from the same
	// global budget, so the derived MemLimit/MaxConcurrent carve would make
	// the last admission an overload shed on a fully loaded server.
	s := server.New(server.Config{MaxConcurrent: 4, QueueDepth: 16,
		MemLimit: 256 << 20, QueryMem: 32 << 20})
	for _, name := range ds.Cat.Names() {
		t, err := ds.Cat.Get(name)
		if err != nil {
			tb.Fatal(err)
		}
		s.RegisterTable(t)
	}
	mix := []server.LoadQuery{}
	for _, q := range bench.Figure1Queries()[:4] { // Q1–Q3 skybands + Q4 pairs
		mix = append(mix, server.LoadQuery{Name: q.Name, SQL: q.SQL})
	}
	return s, mix
}

// TestChaosSoak drives the full fault-recovery stack — error taxonomy,
// degraded retries, circuit breakers, watchdog, drain — under a seeded
// probabilistic fault storm and asserts the contract: every response is
// byte-identical to the fault-free answer or a classified typed error, at
// least half the fault-hit queries recover via degraded retry, no goroutine
// leaks, the budget returns to zero after drain, and every tripped breaker
// re-closes. The seed makes a failure reproducible: rerun with the same
// seed, get the same storm.
func TestChaosSoak(t *testing.T) {
	testleak.Check(t)
	defer failpoint.Reset()
	s, mix := chaosServer(t, 200)

	res, err := s.RunChaos(mix, server.ChaosOptions{Clients: 8, Queries: 24, Seed: 42})
	if err != nil {
		t.Fatalf("chaos soak aborted: %v", err)
	}
	t.Log(res)

	if res.Clients < 8 {
		t.Fatalf("soak ran %d clients, want >= 8", res.Clients)
	}
	if len(res.ArmedSites) < 3 {
		t.Fatalf("storm armed %d sites (%v), want >= 3", len(res.ArmedSites), res.ArmedSites)
	}
	if res.Mismatches != 0 {
		t.Fatalf("%d successful responses differed from the fault-free baseline", res.Mismatches)
	}
	if res.Unclassified != 0 {
		t.Fatalf("%d errors carried no taxonomy class (by class: %v)", res.Unclassified, res.ByClass)
	}
	if res.FaultHit == 0 {
		t.Fatal("the storm never fired — the soak proved nothing")
	}
	if rate := res.RecoveryRate(); rate < 0.5 {
		t.Fatalf("recovery rate %.0f%% (%d/%d), want >= 50%%: %v",
			100*rate, res.Recovered, res.FaultHit, res.ByClass)
	}
	if !res.BreakersReclosed {
		t.Fatal("a session breaker did not re-close after the storm ended")
	}
	if res.BudgetUsed != 0 {
		t.Fatalf("%d budget bytes still held after drain", res.BudgetUsed)
	}
}

// TestChaosSeedReproducible: two soaks with the same seed against identical
// fresh servers observe the same fault pattern (same fault-hit and outcome
// counts) — the property that makes a chaos failure debuggable.
func TestChaosSeedReproducible(t *testing.T) {
	testleak.Check(t)
	defer failpoint.Reset()
	run := func() *server.ChaosResult {
		s, mix := chaosServer(t, 120)
		// One client: concurrency cannot reorder which query draws which
		// PRNG value, so the fault pattern is exactly repeatable.
		res, err := s.RunChaos(mix, server.ChaosOptions{Clients: 1, Queries: 24, Seed: 7})
		if err != nil {
			t.Fatalf("chaos soak aborted: %v", err)
		}
		return res
	}
	a, b := run(), run()
	if a.FaultHit != b.FaultHit || a.OK != b.OK || a.Failed != b.Failed || a.Recovered != b.Recovered {
		t.Fatalf("same seed, different storms:\n  a: %v\n  b: %v", a, b)
	}
}

// BenchmarkChaos runs the seeded chaos soak as a benchmark and regenerates
// BENCH_chaos.json (`make bench-chaos`): one record per storm seed, with the
// armed sites, recovery rate, and post-drain invariants.
func BenchmarkChaos(b *testing.B) {
	seeds := []int64{42, 7}
	latest := map[int64]bench.ChaosBenchRecord{}
	var order []int64
	for _, seed := range seeds {
		b.Run(fmt.Sprintf("seed%d", seed), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				defer failpoint.Reset()
				s, mix := chaosServer(b, 200)
				res, err := s.RunChaos(mix, server.ChaosOptions{Clients: 8, Queries: 24, Seed: seed})
				if err != nil {
					b.Fatal(err)
				}
				if res.Mismatches != 0 || res.Unclassified != 0 || !res.BreakersReclosed || res.BudgetUsed != 0 {
					b.Fatalf("chaos invariants violated: %v", res)
				}
				if _, seen := latest[seed]; !seen {
					order = append(order, seed)
				}
				latest[seed] = bench.NewChaosBenchRecord(res)
				b.ReportMetric(100*res.RecoveryRate(), "recovery-%")
				b.ReportMetric(float64(res.FaultHit), "fault-hit")
				b.ReportMetric(float64(res.Retries), "retries")
			}
		})
	}
	if len(order) > 0 {
		records := make([]bench.ChaosBenchRecord, len(order))
		for i, seed := range order {
			records[i] = latest[seed]
		}
		if err := bench.WriteChaosBench("BENCH_chaos.json", records); err != nil {
			b.Fatal(err)
		}
	}
}
