// Command experiments regenerates every table and figure of the paper's
// evaluation section against the synthetic workloads. Each figure prints
// the same rows/series the paper reports; see EXPERIMENTS.md for the
// paper-vs-measured comparison.
//
// Usage:
//
//	experiments [-fig all|1|2|3|4|5|6|7|8|plans] [-n rows] [-kvn rows] [-seed s]
//
// The default sizes are laptop-friendly; the paper's dataset had 3×10⁵
// rows on a dedicated server. Shapes (who wins, by what factor, where the
// crossovers fall) are what to compare, not absolute times.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"smarticeberg/internal/bench"
)

func main() {
	var (
		fig      = flag.String("fig", "all", "which figure to run: all, 1-8, or plans")
		n        = flag.Int("n", 8000, "player_performance rows")
		kvn      = flag.Int("kvn", 6000, "performance_kv rows (complex query)")
		seed     = flag.Int64("seed", 1, "workload generator seed")
		ks       = flag.String("thresholds", "1,5,25,50,100,250", "thresholds for figures 5-6")
		szs      = flag.String("sizes", "2000,4000,8000,16000", "input sizes for figures 7-8")
		jsonPath = flag.String("json", "", "also write results as JSON to this file")
	)
	flag.Parse()

	thresholds := parseInts(*ks)
	sizes := parseInts(*szs)
	w := os.Stdout
	export := map[string]any{
		"params": map[string]any{"n": *n, "kvn": *kvn, "seed": *seed},
	}

	run := func(name string) bool { return *fig == "all" || *fig == name }

	if run("1") || run("3") {
		ds := bench.NewDataset(*n, 0, *seed)
		if run("1") {
			res := bench.Figure1(ds, w)
			var flat []bench.ExportMeasurement
			for _, bySys := range res {
				for _, m := range bySys {
					flat = append(flat, m.Export())
				}
			}
			export["figure1"] = flat
		}
		if run("3") {
			export["figure3"] = bench.Figure3(ds, w)
		}
	}
	if run("2") {
		ds := bench.NewDataset(*n, 0, *seed)
		fa, fb, err := bench.Figure2(ds, w)
		if err != nil {
			fatal(err)
		}
		export["figure2"] = map[string]float64{"h_hr_fraction": fa, "rbi_sb_fraction": fb}
	}
	if run("4") {
		res := bench.Figure4(*n, *seed, w)
		flat := map[string]bench.ExportMeasurement{}
		for name, m := range res {
			flat[name] = m.Export()
		}
		export["figure4"] = flat
		fmt.Fprintln(w)
	}
	if run("5") {
		export["figure5"] = bench.Figure5(*n, *seed, thresholds, w)
	}
	if run("6") {
		export["figure6"] = bench.Figure6(*kvn, *seed, scaleThresholds(thresholds), w)
	}
	if run("7") {
		export["figure7"] = bench.Figure7(sizes, 50, *seed, w)
	}
	if run("8") {
		export["figure8"] = bench.Figure8(sizes, 10, *seed, w)
	}
	if run("plans") {
		if err := bench.AppendixEPlans(min(*n, 2000), *seed, w); err != nil {
			fatal(err)
		}
	}
	if *jsonPath != "" {
		data, err := json.MarshalIndent(export, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(w, "results written to %s\n", *jsonPath)
	}
}

// scaleThresholds adapts the skyband threshold list to the complex query's
// monotone >= direction (small thresholds are the non-selective end there).
func scaleThresholds(ks []int) []int {
	out := make([]int, 0, len(ks))
	for _, k := range ks {
		if k >= 1 && k <= 250 {
			out = append(out, max(2, k/5))
		}
	}
	if len(out) == 0 {
		out = []int{2, 5, 10, 25, 50}
	}
	return dedupeInts(out)
}

func dedupeInts(xs []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

func parseInts(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			fatal(fmt.Errorf("bad integer list %q: %w", s, err))
		}
		out = append(out, v)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
