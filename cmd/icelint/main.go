// Command icelint is the project's multichecker: it runs the custom
// static-analysis passes from internal/analysis over the named packages and
// exits nonzero when any contract violation survives.
//
// Usage:
//
//	go run ./cmd/icelint ./...          # lint the whole module
//	go run ./cmd/icelint ./internal/engine
//	go run ./cmd/icelint -list          # show the registered passes
//	go run ./cmd/icelint -json ./...    # machine-readable diagnostics (CI)
//
// Findings can be suppressed case-by-case with a directive on or directly
// above the offending line:
//
//	//lint:ignore rowalias row is only held until the next outer.Next call
//
// The reason is mandatory; directives without one are ignored.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"smarticeberg/internal/analysis"
)

// jsonDiagnostic is the -json wire form of one finding, one object per line
// (JSON Lines), so CI can stream-convert findings into annotations.
type jsonDiagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

func main() {
	list := flag.Bool("list", false, "list the registered analysis passes and exit")
	asJSON := flag.Bool("json", false, "emit diagnostics as JSON Lines on stdout")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: icelint [-list] [-json] [packages]\n\nPasses:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader := analysis.NewLoader()
	pkgs, err := loader.LoadTargets(".", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "icelint:", err)
		os.Exit(2)
	}
	count := 0
	enc := json.NewEncoder(os.Stdout)
	for _, p := range pkgs {
		if p.Standard || p.Info == nil {
			continue
		}
		diags, err := analysis.RunAnalyzers(p, analysis.All())
		if err != nil {
			fmt.Fprintln(os.Stderr, "icelint:", err)
			os.Exit(2)
		}
		for _, d := range diags {
			if *asJSON {
				// Annotation consumers (GitHub Actions) want paths relative
				// to the repository root, which is where icelint runs.
				file := d.Pos.Filename
				if cwd, err := os.Getwd(); err == nil {
					if rel, err := filepath.Rel(cwd, file); err == nil && !filepath.IsAbs(rel) {
						file = rel
					}
				}
				if err := enc.Encode(jsonDiagnostic{
					Analyzer: d.Analyzer,
					File:     file,
					Line:     d.Pos.Line,
					Column:   d.Pos.Column,
					Message:  d.Message,
				}); err != nil {
					fmt.Fprintln(os.Stderr, "icelint:", err)
					os.Exit(2)
				}
			} else {
				fmt.Println(d)
			}
			count++
		}
	}
	if count > 0 {
		fmt.Fprintf(os.Stderr, "icelint: %d violation(s)\n", count)
		os.Exit(1)
	}
}
