// Command icebergsql is an interactive SQL shell over the smarticeberg
// engine. It supports CREATE TABLE / INSERT / SELECT plus shell commands:
//
//	\opt on|off           toggle the Smart-Iceberg optimizer (default on)
//	\opt apriori|prune|memo|ci|skip|transfer on|off
//	                      toggle individual techniques
//	\explain <sql>        show the baseline plan or the optimizer rewrites
//	\report               show the optimizer report of the last query
//	\load <dataset> <n> [seed]
//	                      load a synthetic dataset: performance, clustered,
//	                      kv, scores, objects, baskets
//	\import <table> <csv> bulk-load a CSV file (header line expected)
//	\export <table> <csv> write a table as CSV
//	\save <dir>           persist the whole database (manifest + CSVs)
//	\open <dir>           load a database saved with \save
//	\analyze <sql>        run and show the plan with actual row counts
//	\tables               list tables
//	\q                    quit
//
// Example session:
//
//	\load performance 20000
//	SELECT R.playerid, R.year, R.round, COUNT(1)
//	FROM player_performance L, player_performance R
//	WHERE L.b_h >= R.b_h AND L.b_hr >= R.b_hr
//	  AND (L.b_h > R.b_h OR L.b_hr > R.b_hr)
//	GROUP BY R.playerid, R.year, R.round HAVING COUNT(1) < 50;
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"smarticeberg"
)

var (
	flagTimeout  = flag.Duration("timeout", 0, "per-query deadline (e.g. 30s); 0 disables")
	flagMem      = flag.Int64("mem", 0, "per-query memory budget in bytes; 0 = unlimited")
	flagBatch    = flag.Int("batch", 0, "vectorized batch size for query execution; 0 = row-at-a-time")
	flagWorkers  = flag.Int("workers", 0, "parallel workers for NLJP and morsel table scans; 0 = min(4, GOMAXPROCS), 1 = sequential")
	flagSpill    = flag.Bool("spill", false, "spill to disk instead of failing when -mem is exceeded")
	flagSpillDir = flag.String("spill-dir", "", "parent directory for spill files; empty = system temp dir")
	flagSkip     = flag.Bool("skip", true, "zone-map data skipping at the scan layer (requires -batch > 0)")
	flagTransfer = flag.Bool("transfer", true, "sideways predicate transfer from hash-join build sides to probe scans (requires -batch > 0)")
)

func main() {
	flag.Parse()
	db := smarticeberg.Open()
	opts := smarticeberg.AllOptimizations()
	opts.MemoryBudget = *flagMem
	opts.BatchSize = *flagBatch
	opts.Workers = *flagWorkers
	opts.Spill = *flagSpill
	opts.SpillDir = *flagSpillDir
	opts.NoSkip = !*flagSkip
	opts.NoTransfer = !*flagTransfer
	optimize := true
	var lastReport string

	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Println("icebergsql — Smart-Iceberg SQL shell (\\q to quit, \\opt to toggle optimizations)")
	var pending strings.Builder
	prompt := func() {
		if pending.Len() == 0 {
			fmt.Print("iceberg> ")
		} else {
			fmt.Print("    ...> ")
		}
	}
	prompt()
	for in.Scan() {
		line := in.Text()
		trimmed := strings.TrimSpace(line)
		if pending.Len() == 0 && strings.HasPrefix(trimmed, "\\") {
			if !command(db, trimmed, &opts, &optimize, &lastReport) {
				return
			}
			prompt()
			continue
		}
		pending.WriteString(line)
		pending.WriteByte('\n')
		if strings.HasSuffix(trimmed, ";") {
			sql := pending.String()
			pending.Reset()
			runSQL(db, sql, opts, optimize, &lastReport)
		}
		prompt()
	}
}

func runSQL(db *smarticeberg.DB, sql string, opts smarticeberg.Options, optimize bool, lastReport *string) {
	upper := strings.ToUpper(strings.TrimSpace(sql))
	start := time.Now()
	if strings.HasPrefix(upper, "SELECT") || strings.HasPrefix(upper, "WITH") {
		ctx := context.Background()
		if *flagTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *flagTimeout)
			defer cancel()
		}
		before := smarticeberg.SkipTotals()
		if optimize {
			opts.Ctx = ctx
			res, report, err := db.QueryOpt(sql, opts)
			if err != nil {
				fmt.Println("error:", err)
				return
			}
			*lastReport = report.Text
			fmt.Print(res.String())
			degraded := ""
			if report.Stats.Degraded() {
				names := make([]string, len(report.Stats.Degradations))
				for i, r := range report.Stats.Degradations {
					names[i] = r.String()
				}
				degraded = "; degraded under memory budget: " + strings.Join(names, ", ")
			}
			fmt.Printf("Time: %.3fs (optimized; \\report for rewrites%s%s)\n",
				time.Since(start).Seconds(), degraded, skipNote(before))
			return
		}
		var (
			res *smarticeberg.Result
			err error
		)
		mode := "baseline"
		if *flagBatch > 0 {
			res, err = db.QueryBatchWorkersCtx(ctx, sql, *flagBatch, *flagWorkers)
			mode = fmt.Sprintf("baseline, batch %d", *flagBatch)
		} else {
			res, err = db.QueryCtx(ctx, sql)
		}
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Print(res.String())
		fmt.Printf("Time: %.3fs (%s%s)\n", time.Since(start).Seconds(), mode, skipNote(before))
		return
	}
	if err := db.Exec(sql); err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("OK (%.3fs)\n", time.Since(start).Seconds())
}

// skipNote renders the data-skipping work of the query just run — the delta
// of the process-wide counters since before — as a suffix for the timing
// line. Empty when nothing was skipped so default output stays unchanged.
func skipNote(before smarticeberg.SkipStats) string {
	after := smarticeberg.SkipTotals()
	var parts []string
	if n := after.SkippedBlocks - before.SkippedBlocks; n > 0 {
		parts = append(parts, fmt.Sprintf("%d blocks (%d rows)",
			n, after.SkippedRows-before.SkippedRows))
	}
	if n := after.SkippedProbes - before.SkippedProbes; n > 0 {
		parts = append(parts, fmt.Sprintf("%d probe rows (%d filters transferred)",
			n, after.FiltersTransferred-before.FiltersTransferred))
	}
	if len(parts) == 0 {
		return ""
	}
	return "; skipped " + strings.Join(parts, ", ")
}

func command(db *smarticeberg.DB, line string, opts *smarticeberg.Options, optimize *bool, lastReport *string) bool {
	fields := strings.Fields(line)
	switch fields[0] {
	case "\\q", "\\quit":
		return false
	case "\\report":
		if *lastReport == "" {
			fmt.Println("no optimized query has run yet")
		} else {
			fmt.Print(*lastReport)
		}
	case "\\opt":
		if len(fields) == 2 {
			*optimize = fields[1] == "on"
			fmt.Printf("optimizer: %v\n", *optimize)
			break
		}
		if len(fields) == 3 {
			on := fields[2] == "on"
			switch fields[1] {
			case "apriori":
				opts.Apriori = on
			case "prune":
				opts.Prune = on
			case "memo":
				opts.Memo = on
			case "ci":
				opts.CacheIndex = on
			case "skip":
				opts.NoSkip = !on
			case "transfer":
				opts.NoTransfer = !on
			default:
				fmt.Println("unknown technique:", fields[1])
			}
		}
		fmt.Printf("options: %+v (optimizer %v)\n", *opts, *optimize)
	case "\\explain":
		sql := strings.TrimSpace(strings.TrimPrefix(line, "\\explain"))
		sql = strings.TrimSuffix(sql, ";")
		var (
			text string
			err  error
		)
		switch {
		case *optimize:
			text, err = db.Explain(sql, opts)
		case *flagBatch > 0:
			text, err = db.ExplainBatch(sql, *flagBatch)
		default:
			text, err = db.Explain(sql, nil)
		}
		if err != nil {
			fmt.Println("error:", err)
		} else {
			fmt.Print(text)
		}
	case "\\load":
		if len(fields) < 3 {
			fmt.Println("usage: \\load performance|clustered|kv|scores|objects|baskets <n> [seed]")
			break
		}
		n, err := strconv.Atoi(fields[2])
		if err != nil {
			fmt.Println("bad n:", fields[2])
			break
		}
		seed := int64(1)
		if len(fields) > 3 {
			s, err := strconv.ParseInt(fields[3], 10, 64)
			if err == nil {
				seed = s
			}
		}
		switch fields[1] {
		case "performance":
			db.LoadPlayerPerformance(n, seed)
		case "clustered":
			db.LoadClusteredPerformance(n, seed)
		case "kv":
			db.LoadUnpivoted(n, seed)
		case "scores":
			db.LoadScores(n, 12, seed)
		case "objects":
			if err := db.LoadObjects(n, "independent", seed); err != nil {
				fmt.Println("error:", err)
			}
		case "baskets":
			db.LoadBaskets(n, 200, 5, seed)
		default:
			fmt.Println("unknown dataset:", fields[1])
			break
		}
		fmt.Println("loaded")
	case "\\analyze":
		sql := strings.TrimSpace(strings.TrimPrefix(line, "\\analyze"))
		sql = strings.TrimSuffix(sql, ";")
		text, _, err := db.ExplainAnalyzeOpts(sql, *opts)
		if err != nil {
			fmt.Println("error:", err)
		} else {
			fmt.Print(text)
		}
	case "\\import":
		if len(fields) != 3 {
			fmt.Println("usage: \\import <table> <file.csv>  (expects a header line)")
			break
		}
		n, err := db.ImportCSV(fields[1], fields[2], true)
		if err != nil {
			fmt.Println("error:", err)
		} else {
			fmt.Printf("loaded %d rows into %s\n", n, fields[1])
		}
	case "\\export":
		if len(fields) != 3 {
			fmt.Println("usage: \\export <table> <file.csv>")
			break
		}
		if err := db.ExportCSV(fields[1], fields[2]); err != nil {
			fmt.Println("error:", err)
		} else {
			fmt.Println("written", fields[2])
		}
	case "\\save":
		if len(fields) != 2 {
			fmt.Println("usage: \\save <dir>")
			break
		}
		if err := db.Save(fields[1]); err != nil {
			fmt.Println("error:", err)
		} else {
			fmt.Println("saved to", fields[1])
		}
	case "\\open":
		if len(fields) != 2 {
			fmt.Println("usage: \\open <dir>")
			break
		}
		opened, err := smarticeberg.OpenDir(fields[1])
		if err != nil {
			fmt.Println("error:", err)
		} else {
			*db = *opened
			fmt.Println("opened", fields[1])
		}
	case "\\tables":
		for _, name := range []string{"player_performance", "performance_kv", "Score", "Object", "Basket"} {
			if n, err := db.TableRows(name); err == nil {
				fmt.Printf("  %s: %d rows\n", name, n)
			}
		}
	default:
		fmt.Println("unknown command:", fields[0])
	}
	return true
}
