// Command icebergd serves smarticeberg over JSON HTTP with global admission
// control, load shedding, and graceful drain.
//
//	icebergd -addr :8080 -mem 268435456 -max-concurrent 8 -queue 32 -drain-timeout 10s
//
// Endpoints (see internal/server for the full contract):
//
//	POST /session          create a session with default query options
//	POST /tables/workload  register a synthetic workload table
//	POST /exec             CREATE TABLE / INSERT (bumps table versions)
//	POST /query            run a SELECT through the optimizer
//	GET  /stats            admission, budget, and shared-cache counters
//	GET  /healthz          200 while serving, 503 while draining
//
// SIGTERM or SIGINT starts a graceful drain: new queries are rejected with
// 503, in-flight queries get -drain-timeout to finish, stragglers are
// cancelled through their contexts, and the process exits once the server
// is idle.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"smarticeberg/internal/server"
)

var (
	flagAddr    = flag.String("addr", ":8080", "listen address")
	flagMem     = flag.Int64("mem", 0, "server-wide memory budget in bytes; 0 = unlimited")
	flagMaxConc = flag.Int("max-concurrent", 4, "queries allowed to execute at once")
	flagQueue   = flag.Int("queue", 16, "admission queue depth; 0 sheds immediately at capacity")
	flagDrain   = flag.Duration("drain-timeout", 10*time.Second, "grace for in-flight queries on SIGTERM before they are cancelled")
	flagQMem    = flag.Int64("query-mem", 0, "per-query budget in bytes; 0 = mem/max-concurrent")
	flagTimeout = flag.Duration("timeout", 0, "default per-query deadline; 0 disables")
	flagSpill   = flag.Bool("spill", false, "let queries spill to disk under memory pressure")
	flagSpillD  = flag.String("spill-dir", "", "parent directory for spill files; empty = system temp dir")

	flagRetries  = flag.Int("max-retries", 2, "degraded re-executions after a transient/resource failure; -1 disables")
	flagWatchdog = flag.Duration("watchdog-grace", 2*time.Second, "force-cancel queries this far past their deadline; -1ns disables")
	flagNoBreak  = flag.Bool("no-breakers", false, "disable per-session circuit breakers")
	flagCooldown = flag.Duration("breaker-cooldown", time.Second, "open-breaker shed duration before a half-open probe")
)

func main() {
	flag.Parse()
	srv := server.New(server.Config{
		MaxConcurrent:   *flagMaxConc,
		QueueDepth:      *flagQueue,
		MemLimit:        *flagMem,
		QueryMem:        *flagQMem,
		DefaultTimeout:  *flagTimeout,
		Spill:           *flagSpill,
		SpillDir:        *flagSpillD,
		MaxRetries:      *flagRetries,
		WatchdogGrace:   *flagWatchdog,
		NoBreakers:      *flagNoBreak,
		BreakerCooldown: *flagCooldown,
	})

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	fmt.Fprintf(os.Stderr, "icebergd: listening on %s (max-concurrent=%d queue=%d mem=%d)\n",
		*flagAddr, *flagMaxConc, *flagQueue, *flagMem)
	err := srv.ListenAndServe(ctx, *flagAddr, *flagDrain)
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "icebergd: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "icebergd: drained, bye")
}
