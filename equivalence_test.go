// Golden equivalence harness for the vectorized pipeline: every workload
// query runs through the row path and the batch path at several chunk sizes,
// and the results must be byte-identical — same row order, same group
// first-seen order, same float accumulation order. Run under -race in CI.
package smarticeberg_test

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"

	"smarticeberg"
	"smarticeberg/internal/bench"
)

// equivBatchSizes mirrors the engine-level matrix: degenerate, tiny odd, and
// the production default.
var equivBatchSizes = []int{1, 2, 7, 1024}

func equivDB(t *testing.T) *smarticeberg.DB {
	t.Helper()
	db := smarticeberg.Open()
	db.LoadPlayerPerformance(300, 1)
	db.LoadScores(30, 12, 2)
	db.LoadUnpivoted(40, 3)
	return db
}

// identicalNative compares two native result cells bit-for-bit.
func identicalNative(a, b any) bool {
	af, aok := a.(float64)
	bf, bok := b.(float64)
	if aok || bok {
		return aok && bok && math.Float64bits(af) == math.Float64bits(bf)
	}
	return a == b
}

func assertIdenticalResults(t *testing.T, label string, got, want *smarticeberg.Result) {
	t.Helper()
	if len(got.Columns) != len(want.Columns) {
		t.Fatalf("%s: got %d columns, want %d", label, len(got.Columns), len(want.Columns))
	}
	for i := range got.Columns {
		if got.Columns[i] != want.Columns[i] {
			t.Fatalf("%s: column %d = %q, want %q", label, i, got.Columns[i], want.Columns[i])
		}
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("%s: got %d rows, want %d", label, len(got.Rows), len(want.Rows))
	}
	for i := range got.Rows {
		for j := range got.Rows[i] {
			if !identicalNative(got.Rows[i][j], want.Rows[i][j]) {
				t.Fatalf("%s: row %d col %d = %v (%T), want %v (%T)",
					label, i, j, got.Rows[i][j], got.Rows[i][j], want.Rows[i][j], want.Rows[i][j])
			}
		}
	}
}

// equivQueries is every workload query the harness covers: the eight
// Figure-1 queries plus the Listing-3 complex join and two plain shapes
// exercising ORDER BY / DISTINCT paths.
func equivQueries() []struct{ Name, SQL string } {
	qs := bench.Figure1Queries()
	qs = append(qs,
		struct{ Name, SQL string }{"Complex", bench.ComplexSQL(2)},
		struct{ Name, SQL string }{"OrderBy",
			`SELECT playerid, year, b_h FROM player_performance ORDER BY b_h DESC, playerid, year LIMIT 20`},
		struct{ Name, SQL string }{"Distinct",
			`SELECT DISTINCT teamid FROM Score`},
	)
	return qs
}

// TestBatchRowEquivalence: baseline row execution vs the vectorized pipeline
// at every tested chunk size.
func TestBatchRowEquivalence(t *testing.T) {
	db := equivDB(t)
	for _, q := range equivQueries() {
		t.Run(q.Name, func(t *testing.T) {
			want, err := db.Query(q.SQL)
			if err != nil {
				t.Fatalf("row path: %v", err)
			}
			for _, size := range equivBatchSizes {
				got, err := db.QueryBatch(q.SQL, size)
				if err != nil {
					t.Fatalf("batch %d: %v", size, err)
				}
				assertIdenticalResults(t, fmt.Sprintf("batch %d", size), got, want)
			}
		})
	}
}

// TestBatchOptimizerEquivalence: the optimizer (NLJP) runs its internal plan
// fragments — inner relation, binding query, per-binding aggregates —
// through the batch pipeline when Options.BatchSize is set; results must be
// byte-identical to the row-mode optimizer, which in turn matches baseline.
func TestBatchOptimizerEquivalence(t *testing.T) {
	db := equivDB(t)
	for _, q := range bench.Figure1Queries() {
		t.Run(q.Name, func(t *testing.T) {
			opts := smarticeberg.AllOptimizations()
			want, _, err := db.QueryOpt(q.SQL, opts)
			if err != nil {
				t.Fatalf("row-mode optimizer: %v", err)
			}
			for _, size := range equivBatchSizes {
				opts := smarticeberg.AllOptimizations()
				opts.BatchSize = size
				got, _, err := db.QueryOpt(q.SQL, opts)
				if err != nil {
					t.Fatalf("batch %d: %v", size, err)
				}
				assertIdenticalResults(t, fmt.Sprintf("batch %d", size), got, want)
			}
		})
	}
}

// TestBatchCancellation: the batch pipeline observes cancellation at chunk
// granularity through the public API.
func TestBatchCancellation(t *testing.T) {
	db := equivDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := db.QueryBatchCtx(ctx, bench.SkybandSQL("b_h", "b_hr", 50), 64)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("QueryBatchCtx under cancelled ctx: err = %v, want context.Canceled", err)
	}

	opts := smarticeberg.AllOptimizations()
	opts.BatchSize = 64
	opts.Ctx = ctx
	_, _, err = db.QueryOpt(bench.SkybandSQL("b_h", "b_hr", 50), opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("QueryOpt (batch) under cancelled ctx: err = %v, want context.Canceled", err)
	}
}
