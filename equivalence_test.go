// Golden equivalence harness for the vectorized pipeline: every workload
// query runs through the row path and the batch path at several chunk sizes,
// and the results must be byte-identical — same row order, same group
// first-seen order, same float accumulation order. Run under -race in CI.
package smarticeberg_test

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"

	"smarticeberg"
	"smarticeberg/internal/bench"
	"smarticeberg/internal/engine"
	"smarticeberg/internal/failpoint"
	"smarticeberg/internal/testleak"
)

// equivWorkers is the morsel worker sweep: sequential, the smallest real
// pool, and the default cap.
var equivWorkers = []int{1, 2, 4}

// equivBatchSizes mirrors the engine-level matrix: degenerate, tiny odd, and
// the production default.
var equivBatchSizes = []int{1, 2, 7, 1024}

func equivDB(t *testing.T) *smarticeberg.DB {
	t.Helper()
	db := smarticeberg.Open()
	db.LoadPlayerPerformance(300, 1)
	db.LoadScores(30, 12, 2)
	db.LoadUnpivoted(40, 3)
	return db
}

// identicalNative compares two native result cells bit-for-bit.
func identicalNative(a, b any) bool {
	af, aok := a.(float64)
	bf, bok := b.(float64)
	if aok || bok {
		return aok && bok && math.Float64bits(af) == math.Float64bits(bf)
	}
	return a == b
}

func assertIdenticalResults(t *testing.T, label string, got, want *smarticeberg.Result) {
	t.Helper()
	if len(got.Columns) != len(want.Columns) {
		t.Fatalf("%s: got %d columns, want %d", label, len(got.Columns), len(want.Columns))
	}
	for i := range got.Columns {
		if got.Columns[i] != want.Columns[i] {
			t.Fatalf("%s: column %d = %q, want %q", label, i, got.Columns[i], want.Columns[i])
		}
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("%s: got %d rows, want %d", label, len(got.Rows), len(want.Rows))
	}
	for i := range got.Rows {
		for j := range got.Rows[i] {
			if !identicalNative(got.Rows[i][j], want.Rows[i][j]) {
				t.Fatalf("%s: row %d col %d = %v (%T), want %v (%T)",
					label, i, j, got.Rows[i][j], got.Rows[i][j], want.Rows[i][j], want.Rows[i][j])
			}
		}
	}
}

// equivQueries is every workload query the harness covers: the eight
// Figure-1 queries plus the Listing-3 complex join and two plain shapes
// exercising ORDER BY / DISTINCT paths.
func equivQueries() []struct{ Name, SQL string } {
	qs := bench.Figure1Queries()
	qs = append(qs,
		struct{ Name, SQL string }{"Complex", bench.ComplexSQL(2)},
		struct{ Name, SQL string }{"OrderBy",
			`SELECT playerid, year, b_h FROM player_performance ORDER BY b_h DESC, playerid, year LIMIT 20`},
		struct{ Name, SQL string }{"Distinct",
			`SELECT DISTINCT teamid FROM Score`},
	)
	return qs
}

// TestBatchRowEquivalence: baseline row execution vs the vectorized pipeline
// at every tested chunk size.
func TestBatchRowEquivalence(t *testing.T) {
	db := equivDB(t)
	for _, q := range equivQueries() {
		t.Run(q.Name, func(t *testing.T) {
			want, err := db.Query(q.SQL)
			if err != nil {
				t.Fatalf("row path: %v", err)
			}
			for _, size := range equivBatchSizes {
				got, err := db.QueryBatch(q.SQL, size)
				if err != nil {
					t.Fatalf("batch %d: %v", size, err)
				}
				assertIdenticalResults(t, fmt.Sprintf("batch %d", size), got, want)
			}
		})
	}
}

// TestBatchWorkersEquivalence: every workload query through the
// morsel-parallel batch pipeline — chunk sizes × worker counts — must be
// byte-identical to the row path. Chunk sizes above the table sizes fall
// back to the sequential scan (BatchifyWorkers refuses a single-morsel
// parallel plan), so the sweep covers both the rewrite firing and declining.
func TestBatchWorkersEquivalence(t *testing.T) {
	db := equivDB(t)
	for _, q := range equivQueries() {
		t.Run(q.Name, func(t *testing.T) {
			want, err := db.Query(q.SQL)
			if err != nil {
				t.Fatalf("row path: %v", err)
			}
			for _, size := range []int{1, 7, 1024} {
				for _, w := range equivWorkers {
					got, err := db.QueryBatchWorkers(q.SQL, size, w)
					if err != nil {
						t.Fatalf("batch %d workers %d: %v", size, w, err)
					}
					assertIdenticalResults(t, fmt.Sprintf("batch %d workers %d", size, w), got, want)
				}
			}
		})
	}
}

// TestBatchMorselFaultMatrix injects one fault — error or panic — at every
// failpoint on the morsel scan's two sides (worker enqueue, consumer drain)
// plus the scan/filter sites it shares with the sequential pipeline, through
// the public API with a real worker pool. The contract: exactly one typed
// error surfaces and no worker goroutine outlives the query.
func TestBatchMorselFaultMatrix(t *testing.T) {
	db := equivDB(t)
	errBoom := errors.New("boom: injected by test")
	sql := `SELECT playerid, COUNT(1) FROM player_performance WHERE b_h >= 2 GROUP BY playerid`
	sites := []string{
		failpoint.ScanOpen, failpoint.ScanNext, failpoint.ScanClose,
		failpoint.FilterNext,
		failpoint.MorselEnqueue, failpoint.MorselDrain,
	}
	for _, site := range sites {
		for _, mode := range []string{"error", "panic"} {
			t.Run(fmt.Sprintf("%s/%s", site, mode), func(t *testing.T) {
				testleak.Check(t)
				defer failpoint.Reset()
				if mode == "error" {
					failpoint.Enable(site, failpoint.Once(failpoint.Error(errBoom)))
				} else {
					failpoint.Enable(site, failpoint.Once(failpoint.Panic("matrix")))
				}
				res, err := db.QueryBatchWorkers(sql, 7, 4)
				if err == nil {
					t.Fatalf("query succeeded with %d rows, want injected failure", len(res.Rows))
				}
				if failpoint.Hits(site) == 0 {
					t.Fatalf("%s never fired — the site is not reachable in this plan", site)
				}
				switch mode {
				case "error":
					if !errors.Is(err, errBoom) {
						t.Fatalf("error = %v, want the injected errBoom", err)
					}
				case "panic":
					var pe *engine.PanicError
					if !errors.As(err, &pe) {
						t.Fatalf("error = %v (%T), want *engine.PanicError", err, err)
					}
				}
			})
		}
	}
}

// TestBatchWorkersCancellation: a cancelled context surfaces
// context.Canceled at every worker count, and the morsel pool is fully
// joined before the error returns — no goroutine outlives the query.
func TestBatchWorkersCancellation(t *testing.T) {
	db := equivDB(t)
	sql := bench.SkybandSQL("b_h", "b_hr", 50)
	for _, w := range equivWorkers {
		t.Run(fmt.Sprintf("workers%d", w), func(t *testing.T) {
			testleak.Check(t)
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			_, err := db.QueryBatchWorkersCtx(ctx, sql, 7, w)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
		})
	}
}

// TestBatchWorkersBudgetParity: memory-budget outcomes are worker-count
// independent. The morsel scan charges nothing itself and its output stream
// is byte-identical at every pool size, so downstream operators issue the
// same charges in the same order: a budget that clearly fits must succeed
// with identical rows everywhere, and a budget that clearly cannot must fail
// with the typed sentinel everywhere.
func TestBatchWorkersBudgetParity(t *testing.T) {
	db := equivDB(t)
	sql := bench.SkybandSQL("b_h", "b_hr", 50)
	for _, size := range []int{7, 1024} {
		t.Run(fmt.Sprintf("batch%d", size), func(t *testing.T) {
			var want *smarticeberg.Result
			for _, w := range equivWorkers {
				opts := smarticeberg.AllOptimizations()
				opts.BatchSize = size
				opts.Workers = w
				opts.MemoryBudget = 1 << 30
				got, _, err := db.QueryOpt(sql, opts)
				if err != nil {
					t.Fatalf("generous budget, workers %d: %v", w, err)
				}
				if want == nil {
					want = got
				} else {
					assertIdenticalResults(t, fmt.Sprintf("generous budget, workers %d", w), got, want)
				}
			}
			for _, w := range equivWorkers {
				opts := smarticeberg.AllOptimizations()
				opts.BatchSize = size
				opts.Workers = w
				opts.MemoryBudget = 1 << 10
				_, _, err := db.QueryOpt(sql, opts)
				if !errors.Is(err, smarticeberg.ErrBudgetExceeded) {
					t.Fatalf("tiny budget, workers %d: err = %v, want ErrBudgetExceeded", w, err)
				}
			}
		})
	}
}

// TestBatchOptimizerEquivalence: the optimizer (NLJP) runs its internal plan
// fragments — inner relation, binding query, per-binding aggregates —
// through the batch pipeline when Options.BatchSize is set; results must be
// byte-identical to the row-mode optimizer, which in turn matches baseline.
func TestBatchOptimizerEquivalence(t *testing.T) {
	db := equivDB(t)
	for _, q := range bench.Figure1Queries() {
		t.Run(q.Name, func(t *testing.T) {
			opts := smarticeberg.AllOptimizations()
			want, _, err := db.QueryOpt(q.SQL, opts)
			if err != nil {
				t.Fatalf("row-mode optimizer: %v", err)
			}
			for _, size := range equivBatchSizes {
				opts := smarticeberg.AllOptimizations()
				opts.BatchSize = size
				got, _, err := db.QueryOpt(q.SQL, opts)
				if err != nil {
					t.Fatalf("batch %d: %v", size, err)
				}
				assertIdenticalResults(t, fmt.Sprintf("batch %d", size), got, want)
			}
		})
	}
}

// TestBatchCancellation: the batch pipeline observes cancellation at chunk
// granularity through the public API.
func TestBatchCancellation(t *testing.T) {
	db := equivDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := db.QueryBatchCtx(ctx, bench.SkybandSQL("b_h", "b_hr", 50), 64)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("QueryBatchCtx under cancelled ctx: err = %v, want context.Canceled", err)
	}

	opts := smarticeberg.AllOptimizations()
	opts.BatchSize = 64
	opts.Ctx = ctx
	_, _, err = db.QueryOpt(bench.SkybandSQL("b_h", "b_hr", 50), opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("QueryOpt (batch) under cancelled ctx: err = %v, want context.Canceled", err)
	}
}
