package smarticeberg_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"smarticeberg"
)

// figure1SQL is the paper's Figure-1 skyband query over the synthetic
// player_performance workload — the standing example for every resilience
// smoke test (deadlines, budgets).
const figure1SQL = `
	SELECT R.playerid, R.year, R.round, COUNT(1)
	FROM player_performance L, player_performance R
	WHERE L.b_h >= R.b_h AND L.b_hr >= R.b_hr
	  AND (L.b_h > R.b_h OR L.b_hr > R.b_hr)
	GROUP BY R.playerid, R.year, R.round
	HAVING COUNT(1) < 20`

func perfDB(t *testing.T) *smarticeberg.DB {
	t.Helper()
	db := smarticeberg.Open()
	db.LoadPlayerPerformance(800, 7)
	return db
}

// expiredCtx returns a context whose 1ms deadline has already passed, so
// every executor must fail deterministically — no timing races.
func expiredCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	t.Cleanup(cancel)
	<-ctx.Done()
	return ctx
}

// TestDeadlineSmoke: the Figure-1 query under a 1ms deadline returns a clean
// context.DeadlineExceeded from every executor — baseline, parallel, and
// optimized — instead of running to completion or crashing.
func TestDeadlineSmoke(t *testing.T) {
	db := perfDB(t)
	ctx := expiredCtx(t)

	if _, err := db.QueryCtx(ctx, figure1SQL); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("QueryCtx error = %v, want context.DeadlineExceeded", err)
	}
	if _, err := db.QueryVendorACtx(ctx, figure1SQL); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("QueryVendorACtx error = %v, want context.DeadlineExceeded", err)
	}
	opts := smarticeberg.AllOptimizations()
	opts.Ctx = ctx
	if _, _, err := db.QueryOpt(figure1SQL, opts); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("QueryOpt error = %v, want context.DeadlineExceeded", err)
	}
}

// TestCancellationSmoke: a cancelled context surfaces context.Canceled.
func TestCancellationSmoke(t *testing.T) {
	db := perfDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.QueryCtx(ctx, figure1SQL); !errors.Is(err, context.Canceled) {
		t.Errorf("QueryCtx error = %v, want context.Canceled", err)
	}
	opts := smarticeberg.AllOptimizations()
	opts.Ctx = ctx
	if _, _, err := db.QueryOpt(figure1SQL, opts); !errors.Is(err, context.Canceled) {
		t.Errorf("QueryOpt error = %v, want context.Canceled", err)
	}
}

// TestMemoryBudgetSmoke exercises the public budget API end to end: a
// generous budget runs clean, any tighter budget either degrades to the
// identical result or fails with the exported typed sentinel.
func TestMemoryBudgetSmoke(t *testing.T) {
	db := perfDB(t)
	base, err := db.Query(figure1SQL)
	if err != nil {
		t.Fatal(err)
	}

	opts := smarticeberg.AllOptimizations()
	opts.MemoryBudget = 1 << 30
	res, report, err := db.QueryOpt(figure1SQL, opts)
	if err != nil {
		t.Fatalf("generous budget failed: %v", err)
	}
	if !sameRows(base, res) {
		t.Fatalf("budgeted run changed the result:\n%s", report.Text)
	}
	if report.Stats.Degraded() {
		t.Errorf("generous budget reported degradation: %+v", report.Stats)
	}

	for _, budget := range []int64{1 << 16, 1 << 13, 1 << 10} {
		opts.MemoryBudget = budget
		res, report, err := db.QueryOpt(figure1SQL, opts)
		if err != nil {
			if !errors.Is(err, smarticeberg.ErrBudgetExceeded) {
				t.Fatalf("budget=%d: error %v, want ErrBudgetExceeded or success", budget, err)
			}
			continue
		}
		if !sameRows(base, res) {
			t.Fatalf("budget=%d changed the result:\n%s", budget, report.Text)
		}
	}
}
